"""GraphSample container and random structure generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GraphSample,
    clique_motif,
    connected_chain_backbone,
    dedupe_edges,
    knn_edges,
    planted_partition,
    random_regularish,
    ring_motif,
    star_motif,
    undirected_edge_index,
)


class TestGraphSample:
    def make(self):
        edge_index = np.array([[0, 1], [1, 2]])
        x = np.zeros((3, 4), np.float32)
        return GraphSample(edge_index, x, 0)

    def test_counts(self):
        g = self.make()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.num_features == 4

    def test_degrees(self):
        g = self.make()
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 1])
        np.testing.assert_array_equal(g.out_degrees(), [1, 1, 0])

    def test_with_self_loops(self):
        g = self.make().with_self_loops()
        assert g.num_edges == 5
        np.testing.assert_array_equal(g.in_degrees(), [1, 2, 2])

    def test_rejects_bad_edge_index_shape(self):
        with pytest.raises(ValueError):
            GraphSample(np.zeros((3, 2)), np.zeros((2, 2), np.float32), 0)

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            GraphSample(np.array([[0], [5]]), np.zeros((2, 2), np.float32), 0)

    def test_rejects_negative_edges(self):
        with pytest.raises(ValueError):
            GraphSample(np.array([[-1], [0]]), np.zeros((2, 2), np.float32), 0)

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            GraphSample(np.zeros((2, 0), np.int64), np.zeros(3, np.float32), 0)

    def test_pos_length_checked(self):
        with pytest.raises(ValueError):
            GraphSample(
                np.zeros((2, 0), np.int64),
                np.zeros((3, 2), np.float32),
                0,
                pos=np.zeros((2, 2), np.float32),
            )


class TestEdgeUtilities:
    def test_undirected_doubles(self):
        ei = undirected_edge_index(np.array([0, 1]), np.array([1, 2]))
        assert ei.shape == (2, 4)
        # both directions present
        pairs = set(map(tuple, ei.T))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_dedupe_removes_self_loops_and_duplicates(self):
        src = np.array([0, 0, 1, 2, 1])
        dst = np.array([0, 1, 0, 2, 2])
        s, d = dedupe_edges(src, dst, 3)
        pairs = set(zip(s.tolist(), d.tolist()))
        assert pairs == {(0, 1), (1, 2)}

    def test_dedupe_canonicalises_direction(self):
        s, d = dedupe_edges(np.array([2]), np.array([0]), 3)
        assert (s[0], d[0]) == (0, 2)


class TestMotifs:
    def test_ring(self):
        s, d = ring_motif(5, 4)
        assert len(s) == 4
        assert set(s) | set(d) == {5, 6, 7, 8}

    def test_clique_edge_count(self):
        s, d = clique_motif(0, 5)
        assert len(s) == 10  # 5 choose 2

    def test_star(self):
        s, d = star_motif(2, 4)
        assert all(x == 2 for x in s)
        assert len(d) == 3

    def test_chain_is_connected(self, rng):
        s, d = connected_chain_backbone(10, rng)
        assert len(s) == 9
        assert set(np.concatenate([s, d])) == set(range(10))


class TestRandomGenerators:
    def test_regularish_degree(self, rng):
        s, d = random_regularish(200, 6.0, rng)
        avg_degree = 2 * len(s) / 200
        assert 3.0 < avg_degree <= 6.5

    def test_planted_partition_homophily(self, rng):
        labels = np.repeat(np.arange(4), 100)
        s, d = planted_partition(labels, 2000, intra_fraction=0.9, rng=rng)
        same = (labels[s] == labels[d]).mean()
        assert same > 0.7

    def test_planted_partition_validates_fraction(self, rng):
        with pytest.raises(ValueError):
            planted_partition(np.zeros(4, int), 10, 1.5, rng)

    def test_knn_edges_within_range(self, rng):
        pts = rng.random((30, 2)).astype(np.float32)
        s, d = knn_edges(pts, 4)
        assert s.max() < 30 and d.max() < 30
        assert np.all(s < d)  # canonical undirected form

    def test_knn_single_point(self, rng):
        s, d = knn_edges(np.zeros((1, 2), np.float32), 4)
        assert len(s) == 0


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 40), n_edges=st.integers(1, 120), seed=st.integers(0, 1000))
def test_dedupe_properties(n, n_edges, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, n_edges)
    dst = rng.integers(0, n, n_edges)
    s, d = dedupe_edges(src, dst, n)
    assert np.all(s < d)  # no self loops, canonical order
    keys = s * n + d
    assert len(np.unique(keys)) == len(keys)  # no duplicates
