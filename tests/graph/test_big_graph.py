"""CSRBigGraph: construction, validation and CSR/COO round trips."""

import numpy as np
import pytest

from repro.graph import CSRBigGraph, compact_edges, gather_rows


def small_graph(**kwargs):
    # 0 -> 1, 1 -> 2, 3 -> 2 directed; symmetrized by default.
    return CSRBigGraph.from_edges(
        np.array([0, 1, 3]), np.array([1, 2, 2]), 4, **kwargs
    )


class TestConstruction:
    def test_from_edges_symmetrized(self):
        g = small_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 6  # every directed edge plus its mirror
        np.testing.assert_array_equal(np.sort(g.in_neighbors(2)), [1, 3])
        np.testing.assert_array_equal(np.sort(g.in_neighbors(1)), [0, 2])

    def test_from_edges_directed(self):
        g = small_graph(symmetrize=False)
        assert g.num_edges == 3
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 2, 0])
        np.testing.assert_array_equal(g.out_degrees(), [1, 1, 0, 1])

    def test_symmetrize_dedupes_mirrors(self):
        # Both directions given explicitly must not double the edge.
        g = CSRBigGraph.from_edges(np.array([0, 1]), np.array([1, 0]), 2)
        assert g.num_edges == 2

    def test_self_loops_survive(self):
        g = CSRBigGraph.from_edges(np.array([0, 0]), np.array([0, 1]), 2)
        assert 0 in g.in_neighbors(0)

    def test_edge_index_round_trip(self):
        g = small_graph()
        ei = g.edge_index()
        g2 = CSRBigGraph.from_edges(ei[0], ei[1], 4, symmetrize=False)
        np.testing.assert_array_equal(g.indptr, g2.indptr)
        np.testing.assert_array_equal(g.indices, g2.indices)

    def test_features_and_labels(self):
        x = np.ones((4, 3), np.float32)
        y = np.arange(4)
        g = small_graph(x=x, y=y)
        assert g.num_features == 3
        assert g.nbytes() == g.indptr.nbytes + g.indices.nbytes + x.nbytes + y.nbytes


class TestValidation:
    def test_rejects_bad_indptr_ends(self):
        with pytest.raises(ValueError):
            CSRBigGraph(np.array([0, 1]), np.empty(0, np.int64))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRBigGraph(np.array([0, 2, 1]), np.zeros(1, np.int64))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            CSRBigGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_mismatched_features(self):
        with pytest.raises(ValueError):
            CSRBigGraph(np.array([0, 0, 0]), np.empty(0, np.int64),
                        x=np.zeros((3, 2), np.float32))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            CSRBigGraph(np.array([0, 0, 0]), np.empty(0, np.int64),
                        y=np.zeros(3, np.int64))


class TestHelpers:
    def test_gather_rows_contiguous_float32(self):
        x = np.arange(12, dtype=np.float64).reshape(4, 3)
        rows = gather_rows(x, np.array([2, 0]))
        assert rows.dtype == np.float32
        assert rows.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(rows[0], x[2])

    def test_compact_edges_relabels_unsorted_nodes(self):
        nodes = np.array([7, 3, 9])
        local, _ = compact_edges(np.array([9, 7, 3, 7]), nodes)
        np.testing.assert_array_equal(nodes[local], [9, 7, 3, 7])
