"""Pure sharding helpers: disjoint, equal-sized, drop-remainder shards."""

import numpy as np
import pytest

from repro.graph import check_shard, shard_order


class TestShardOrder:
    def test_world_one_returns_order_unchanged(self):
        order = np.arange(7)
        assert shard_order(order, 0, 1) is order

    @pytest.mark.parametrize("n,world", [(10, 2), (10, 3), (17, 4), (8, 8)])
    def test_shards_are_disjoint_equal_and_cover_the_truncated_order(
        self, n, world
    ):
        order = np.random.default_rng(0).permutation(n)
        shards = [shard_order(order, rank, world) for rank in range(world)]
        assert all(len(s) == n // world for s in shards)
        flat = np.concatenate(shards)
        assert len(set(flat.tolist())) == len(flat)
        assert set(flat.tolist()) == set(order[: (n // world) * world].tolist())

    def test_remainder_graphs_are_dropped(self):
        order = np.arange(10)
        shards = [shard_order(order, rank, 3) for rank in range(3)]
        assert sorted(np.concatenate(shards).tolist()) == list(range(9))

    def test_same_order_gives_same_shards(self):
        order = np.random.default_rng(3).permutation(20)
        again = shard_order(order.copy(), 1, 4)
        np.testing.assert_array_equal(shard_order(order, 1, 4), again)


class TestCheckShard:
    def test_returns_shard_length(self):
        assert check_shard(10, 2, False, 0, 3) == 3
        assert check_shard(10, 2, False, 0, 1) == 10

    def test_rejects_bad_rank_or_world(self):
        with pytest.raises(ValueError):
            check_shard(10, 2, False, 0, 0)
        with pytest.raises(ValueError):
            check_shard(10, 2, False, 2, 2)
        with pytest.raises(ValueError):
            check_shard(10, 2, False, -1, 2)

    def test_empty_shard_rejected_only_when_distributed(self):
        # An unsharded loader over zero graphs stays legal (the trainers
        # build empty val loaders when train_fraction=1.0).
        assert check_shard(0, 4, False, 0, 1) == 0
        with pytest.raises(ValueError, match="empty shard"):
            check_shard(3, 2, False, 0, 4)

    def test_drop_last_zero_batches_message_matches_unsharded_error(self):
        with pytest.raises(ValueError, match="would yield zero batches"):
            check_shard(10, 16, True, 0, 1)
        with pytest.raises(ValueError, match="would yield zero batches"):
            check_shard(30, 16, True, 1, 2)
        assert check_shard(32, 16, True, 1, 2) == 16
