"""Scalable generators (R-MAT, Chung-Lu) plus the vectorised
planted-partition rewrite and the generator edge cases."""

import numpy as np
import pytest

from repro.graph import (
    chung_lu_edges,
    planted_partition,
    random_regularish,
    rmat_edges,
)
from repro.graph.graph import dedupe_edges


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ----------------------------------------------------------------------
# planted_partition: grouped-choice vectorisation must preserve the
# historical RNG stream bit for bit
# ----------------------------------------------------------------------
def _planted_partition_reference(labels, n_edges, intra_fraction, rng):
    """The historical per-class boolean-mask implementation, verbatim.

    Kept as the oracle for the grouped ``rng.choice`` rewrite: both draw
    the same RNG calls in the same order, so seeded outputs must be
    identical, not merely distributionally equivalent.
    """
    labels = np.asarray(labels)
    n = len(labels)
    n_intra = int(n_edges * intra_fraction)
    by_class = [np.flatnonzero(labels == c) for c in np.unique(labels)]
    class_sizes = np.array([len(ix) for ix in by_class], dtype=np.float64)
    class_prob = class_sizes / class_sizes.sum()

    classes = rng.choice(len(by_class), size=n_intra, p=class_prob)
    src_intra = np.empty(n_intra, dtype=np.int64)
    dst_intra = np.empty(n_intra, dtype=np.int64)
    for c, members in enumerate(by_class):
        mask = classes == c
        count = int(mask.sum())
        if count == 0:
            continue
        src_intra[mask] = rng.choice(members, size=count)
        dst_intra[mask] = rng.choice(members, size=count)

    n_inter = n_edges - n_intra
    src_inter = rng.integers(0, n, size=n_inter)
    dst_inter = rng.integers(0, n, size=n_inter)

    src = np.concatenate([src_intra, src_inter])
    dst = np.concatenate([dst_intra, dst_inter])
    return dedupe_edges(src, dst, n)


class TestPlantedPartitionVectorised:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("intra", [0.0, 0.5, 0.9, 1.0])
    def test_identical_to_mask_loop_reference(self, seed, intra):
        labels = np.random.default_rng(seed).integers(0, 7, size=400)
        s_new, d_new = planted_partition(
            labels, 3000, intra, np.random.default_rng(seed)
        )
        s_ref, d_ref = _planted_partition_reference(
            labels, 3000, intra, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(s_new, s_ref)
        np.testing.assert_array_equal(d_new, d_ref)

    def test_uneven_class_sizes_match_reference(self):
        # One giant class and several singletons stress the grouped fill.
        labels = np.concatenate([np.zeros(300, int), np.arange(1, 9)])
        s_new, d_new = planted_partition(
            labels, 2000, 0.8, np.random.default_rng(3)
        )
        s_ref, d_ref = _planted_partition_reference(
            labels, 2000, 0.8, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(s_new, s_ref)
        np.testing.assert_array_equal(d_new, d_ref)

    def test_single_class(self):
        # All-intra edges within one class: every edge stays inside it.
        labels = np.zeros(50, dtype=int)
        s, d = planted_partition(labels, 500, 1.0, np.random.default_rng(0))
        assert len(s) > 0
        assert np.all(s != d)
        assert s.max() < 50 and d.max() < 50

    def test_empty_labels(self):
        s, d = planted_partition(np.empty(0, int), 10, 0.5,
                                 np.random.default_rng(0))
        assert len(s) == 0 and len(d) == 0

    def test_zero_edges(self):
        s, d = planted_partition(np.zeros(5, int), 0, 0.5,
                                 np.random.default_rng(0))
        assert len(s) == 0 and len(d) == 0


class TestRandomRegularishEdgeCases:
    def test_zero_avg_degree(self, rng):
        s, d = random_regularish(100, 0.0, rng)
        assert len(s) == 0 and len(d) == 0
        assert s.dtype == np.int64

    def test_single_node(self, rng):
        s, d = random_regularish(1, 4.0, rng)
        assert len(s) == 0 and len(d) == 0

    def test_zero_nodes(self, rng):
        s, d = random_regularish(0, 4.0, rng)
        assert len(s) == 0 and len(d) == 0

    def test_negative_nodes_raise(self, rng):
        with pytest.raises(ValueError):
            random_regularish(-1, 4.0, rng)


# ----------------------------------------------------------------------
# R-MAT
# ----------------------------------------------------------------------
class TestRmat:
    def test_deterministic(self):
        s1, d1 = rmat_edges(1 << 12, 30_000, np.random.default_rng(5))
        s2, d2 = rmat_edges(1 << 12, 30_000, np.random.default_rng(5))
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(d1, d2)

    def test_exact_count_unique_no_self_loops(self, rng):
        n = 5000  # deliberately not a power of two
        s, d = rmat_edges(n, 40_000, rng)
        assert len(s) == len(d) == 40_000
        assert s.min() >= 0 and s.max() < n
        assert d.min() >= 0 and d.max() < n
        assert np.all(s != d)
        assert len(np.unique(s * n + d)) == 40_000

    def test_low_ids_are_hubs(self, rng):
        # The default quadrant skew concentrates mass at low ids.
        n = 4096
        s, d = rmat_edges(n, 50_000, rng)
        deg = np.bincount(d, minlength=n)
        assert deg[: n // 4].sum() > deg[3 * n // 4:].sum()

    def test_degenerate_sizes(self, rng):
        for n_nodes, n_edges in [(0, 10), (1, 10), (10, 0)]:
            s, d = rmat_edges(n_nodes, n_edges, rng)
            assert len(s) == 0 and len(d) == 0

    def test_rejects_impossible_density(self, rng):
        with pytest.raises(ValueError):
            rmat_edges(3, 7, rng)  # 3 nodes carry at most 6 directed edges

    def test_rejects_bad_probabilities(self, rng):
        with pytest.raises(ValueError):
            rmat_edges(16, 10, rng, a=0.6, b=0.3, c=0.3)  # sums past 1


# ----------------------------------------------------------------------
# Chung-Lu
# ----------------------------------------------------------------------
class TestChungLu:
    def test_deterministic(self):
        s1, d1 = chung_lu_edges(3000, 20_000, np.random.default_rng(9))
        s2, d2 = chung_lu_edges(3000, 20_000, np.random.default_rng(9))
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(d1, d2)

    def test_exact_count_unique_no_self_loops(self, rng):
        n = 3000
        s, d = chung_lu_edges(n, 20_000, rng)
        assert len(s) == 20_000
        assert np.all(s != d)
        assert len(np.unique(s * n + d)) == 20_000
        assert max(s.max(), d.max()) < n

    def test_power_law_hubs(self, rng):
        n = 3000
        s, d = chung_lu_edges(n, 30_000, rng)
        deg = np.bincount(d, minlength=n)
        # Heavy-tailed: the top percentile of nodes carries a large
        # multiple of the average degree.
        assert deg.max() > 5 * deg.mean()
        assert deg[: n // 10].sum() > deg[n // 2:].sum()

    def test_degenerate_sizes(self, rng):
        for n_nodes, n_edges in [(0, 10), (1, 10), (10, 0)]:
            s, d = chung_lu_edges(n_nodes, n_edges, rng)
            assert len(s) == 0 and len(d) == 0

    def test_rejects_bad_exponent(self, rng):
        with pytest.raises(ValueError):
            chung_lu_edges(100, 50, rng, exponent=1.0)
