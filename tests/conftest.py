"""Shared fixtures: every test runs against a fresh simulated device."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import Device, set_device


@pytest.fixture(autouse=True)
def fresh_device():
    """Isolate the global device so clock/memory state never leaks."""
    device = Device()
    set_device(device)
    yield device
    set_device(Device())


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
