"""Generalized GSDDMM: forward/backward parity against unfused chains.

The contract under test is docs/kernels.md: every (op, target) combination
produces original-edge-order outputs equal to the obvious unfused
gather/elementwise composition, with gradients to match, in one forward
launch and one backward launch.
"""

import numpy as np
import pytest

from repro.tensor import CSRGraph, Tensor, gsddmm, gsddmm_dot, index_rows, ops


def random_graph(rng, n_src=7, n_dst=6, n_edges=18):
    src = rng.integers(0, n_src, size=n_edges)
    dst = rng.integers(0, n_dst, size=n_edges)
    return src, dst, CSRGraph.from_edge_index(src, dst, n_src, n_dst)


def feats(rng, n, d):
    # Offset away from zero so div stays well-conditioned.
    return (rng.normal(0.0, 1.0, size=(n, d)) + 3.0).astype(np.float32)


ELEMENTWISE = ("add", "sub", "mul", "div")


class TestForwardParity:
    @pytest.mark.parametrize("op", ELEMENTWISE)
    def test_u_op_v_matches_unfused_gather_chain(self, rng, op):
        src, dst, g = random_graph(rng)
        a, b = Tensor(feats(rng, 7, 4)), Tensor(feats(rng, 6, 4))
        fused = gsddmm(g, op, a, b)
        unfused = getattr(ops, op)(
            index_rows(a, src), index_rows(b, dst)
        )
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_dot_matches_unfused_chain(self, rng):
        src, dst, g = random_graph(rng)
        a, b = Tensor(feats(rng, 7, 4)), Tensor(feats(rng, 6, 4))
        fused = gsddmm(g, "dot", a, b)
        unfused = ops.mul(index_rows(a, src), index_rows(b, dst)).sum(axis=-1)
        np.testing.assert_allclose(fused.data, unfused.data, rtol=1e-6)

    def test_dot_shorthand(self, rng):
        src, dst, g = random_graph(rng)
        a, b = Tensor(feats(rng, 7, 4)), Tensor(feats(rng, 6, 4))
        np.testing.assert_array_equal(
            gsddmm_dot(g, a, b).data, gsddmm(g, "dot", a, b).data
        )

    def test_copy_lhs_gathers_source_rows(self, rng):
        src, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4))
        np.testing.assert_array_equal(
            gsddmm(g, "copy_lhs", a).data, a.data[src]
        )

    def test_edge_target_operand(self, rng):
        src, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4))
        e = Tensor(feats(rng, 18, 4))
        out = gsddmm(g, "add", a, e, lhs_target="u", rhs_target="e")
        np.testing.assert_array_equal(out.data, a.data[src] + e.data)

    def test_output_is_original_edge_order(self, rng):
        # A graph whose CSR order differs from edge order: descending dst.
        src = np.array([0, 1, 2]); dst = np.array([2, 1, 0])
        g = CSRGraph.from_edge_index(src, dst, 3, 3)
        a = Tensor(np.diag([1.0, 2.0, 3.0]).astype(np.float32))
        out = gsddmm(g, "copy_lhs", a)
        np.testing.assert_array_equal(out.data, a.data[src])


class TestBackwardParity:
    @pytest.mark.parametrize("op", ELEMENTWISE + ("dot",))
    def test_gradients_match_unfused_chain(self, rng, op):
        src, dst, g = random_graph(rng)
        a1 = Tensor(feats(rng, 7, 4), requires_grad=True)
        b1 = Tensor(feats(rng, 6, 4), requires_grad=True)
        a2 = Tensor(np.array(a1.data), requires_grad=True)
        b2 = Tensor(np.array(b1.data), requires_grad=True)

        gsddmm(g, op, a1, b1).sum().backward()
        u, v = index_rows(a2, src), index_rows(b2, dst)
        unfused = (
            ops.mul(u, v).sum(axis=-1) if op == "dot" else getattr(ops, op)(u, v)
        )
        unfused.sum().backward()

        np.testing.assert_allclose(a1.grad, a2.grad, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(b1.grad, b2.grad, rtol=1e-5, atol=1e-5)

    def test_edge_target_gradient_is_identity_scatter(self, rng):
        src, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4))
        e = Tensor(feats(rng, 18, 4), requires_grad=True)
        gsddmm(g, "mul", a, e, rhs_target="e").sum().backward()
        np.testing.assert_allclose(e.grad, a.data[src], rtol=1e-6)


class TestLaunchesAndNaming:
    def test_single_forward_and_backward_launch(self, rng, fresh_device):
        _, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4), requires_grad=True)
        b = Tensor(feats(rng, 6, 4), requires_grad=True)
        fresh_device.profiler.enabled = True
        out = gsddmm(g, "add", a, b)
        names = [r.name for r in fresh_device.profiler.records]
        assert names == ["gsddmm_add"]
        out.sum().backward()
        names = [r.name for r in fresh_device.profiler.records]
        assert names.count("gsddmm_add_backward") == 1

    def test_format_suffix_on_tuned_graph(self, rng, fresh_device):
        _, _, g = random_graph(rng)
        g.set_format("coo")
        a, b = Tensor(feats(rng, 7, 4)), Tensor(feats(rng, 6, 4))
        fresh_device.profiler.enabled = True
        gsddmm(g, "dot", a, b)
        assert [r.name for r in fresh_device.profiler.records] == ["gsddmm_dot@coo"]


class TestValidation:
    def test_rejects_unknown_op(self, rng):
        _, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4))
        with pytest.raises(ValueError, match="op"):
            gsddmm(g, "pow", a, a)

    def test_rejects_unknown_target(self, rng):
        _, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4))
        with pytest.raises(ValueError, match="target"):
            gsddmm(g, "add", a, a, lhs_target="w")

    def test_rejects_row_mismatch(self, rng):
        _, _, g = random_graph(rng)
        with pytest.raises(ValueError):
            gsddmm(g, "add", Tensor(feats(rng, 3, 4)), Tensor(feats(rng, 6, 4)))

    def test_copy_lhs_rejects_rhs(self, rng):
        _, _, g = random_graph(rng)
        a = Tensor(feats(rng, 7, 4))
        with pytest.raises(ValueError):
            gsddmm(g, "copy_lhs", a, a)
