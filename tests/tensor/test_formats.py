"""Sparse-format selection: rules, determinism, charging, and parity.

docs/kernels.md's contract: format choice is pure accounting — selection
is a deterministic function of the graph's in-degree statistics, tuned
graphs launch suffixed kernels the cost model prices differently, and
values never change.
"""

import numpy as np
import pytest

from repro.device import FORMAT_EFFICIENCY, kernel_efficiency
from repro.graph.generators import rmat_edges
from repro.tensor import (
    CSRGraph,
    FORMATS,
    Tensor,
    degree_stats,
    format_index_bytes,
    gspmm,
    select_format,
)


def graph_from(src, dst, n):
    return CSRGraph.from_edge_index(np.asarray(src), np.asarray(dst), n, n)


def regular_graph(n=64, degree=16, rng=None):
    rng = rng or np.random.default_rng(0)
    dst = np.repeat(np.arange(n), degree)
    src = rng.integers(0, n, size=n * degree)
    return graph_from(src, dst, n)


def rmat_graph(n=1024, n_edges=8192, seed=7):
    src, dst = rmat_edges(n, n_edges, np.random.default_rng(seed))
    return graph_from(src, dst, n)


class TestSelectionRules:
    def test_skewed_degrees_pick_coo(self):
        # One hub receives most edges: cv far above the skew threshold.
        rng = np.random.default_rng(0)
        dst = np.where(rng.random(4096) < 0.7, 0, rng.integers(0, 256, 4096))
        g = graph_from(rng.integers(0, 256, 4096), dst, 256)
        decision = select_format(g)
        assert decision.fmt == "coo"
        _, cv = degree_stats(g)
        assert cv > 1.0

    def test_regular_dense_rows_pick_bcsr(self):
        decision = select_format(regular_graph())
        assert decision.fmt == "bcsr"
        mean, cv = degree_stats(regular_graph())
        assert mean >= 8.0 and cv <= 0.5

    def test_middling_graph_picks_csr(self):
        # Uniform random endpoints at low degree: neither skewed nor dense.
        rng = np.random.default_rng(3)
        g = graph_from(rng.integers(0, 256, 512), rng.integers(0, 256, 512), 256)
        assert select_format(g).fmt == "csr"

    def test_rmat_skew_is_detected(self):
        # Graph500-style R-MAT degree distributions are power-law shaped;
        # the selector must route them to the edge-parallel COO kernels.
        g = rmat_graph()
        _, cv = degree_stats(g)
        assert cv > 1.0
        assert select_format(g).fmt == "coo"

    def test_decision_carries_reason_and_stats(self):
        decision = select_format(rmat_graph())
        assert decision.cv_degree > 1.0
        assert decision.reason


class TestDeterminismAndCaching:
    def test_selection_is_deterministic_across_rebuilds(self):
        # Same R-MAT seed -> same graph -> same decision, every time.
        decisions = [select_format(rmat_graph(seed=11)) for _ in range(3)]
        assert len({d.fmt for d in decisions}) == 1
        assert len({d.cv_degree for d in decisions}) == 1

    def test_selection_varies_with_structure_not_identity(self):
        assert select_format(rmat_graph()).fmt == "coo"
        assert select_format(regular_graph()).fmt == "bcsr"

    def test_autotune_caches_per_graph(self):
        g = rmat_graph()
        assert g.fmt is None
        assert g.autotune_format() == "coo"
        first = g._format_decision
        assert g.autotune_format() == "coo"
        assert g._format_decision is first  # cached, not recomputed

    def test_set_format_pins_and_validates(self):
        g = regular_graph()
        assert g.set_format("csr").fmt == "csr"
        assert g.set_format(None).fmt is None
        with pytest.raises(ValueError, match="format"):
            g.set_format("ell")


class TestCharging:
    def test_format_efficiency_scales_sparse_kernels(self):
        base = kernel_efficiency("gspmm")
        assert kernel_efficiency("gspmm@csr") == base
        assert kernel_efficiency("gspmm@coo") == pytest.approx(
            base * FORMAT_EFFICIENCY["coo"]
        )
        assert kernel_efficiency("gspmm@bcsr") == pytest.approx(
            base * FORMAT_EFFICIENCY["bcsr"]
        )

    def test_efficiency_cap(self):
        # A high-efficiency base kernel cannot exceed the 0.95 cap.
        assert kernel_efficiency("matmul@bcsr") == 0.95

    def test_index_bytes_ordering(self):
        g = regular_graph()
        coo = format_index_bytes(g, "coo")
        csr = format_index_bytes(g, "csr")
        bcsr = format_index_bytes(g, "bcsr")
        assert coo == 16.0 * g.num_edges
        assert csr == 8.0 * (g.num_edges + g.num_dst + 1)
        assert bcsr < csr < coo  # blocking amortises the index reads

    def test_unknown_format_index_bytes_rejected(self):
        with pytest.raises(ValueError):
            format_index_bytes(regular_graph(), "ell")

    def test_tuned_graph_charges_index_traffic(self, fresh_device, rng):
        x = Tensor(rng.normal(size=(64, 8)).astype(np.float32))
        fresh_device.profiler.enabled = True
        gspmm(regular_graph(), x)
        plain = fresh_device.profiler.records[-1]
        gspmm(regular_graph().set_format("bcsr"), x)
        tuned = fresh_device.profiler.records[-1]
        assert tuned.name == "gspmm@bcsr" and plain.name == "gspmm"
        extra = format_index_bytes(regular_graph(), "bcsr")
        assert tuned.bytes_moved == pytest.approx(plain.bytes_moved + extra)


class TestParity:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_values_identical_across_formats(self, fmt, rng):
        x = Tensor(rng.normal(size=(64, 8)).astype(np.float32))
        base = gspmm(regular_graph(), x).data
        tuned = gspmm(regular_graph().set_format(fmt), x).data
        np.testing.assert_array_equal(base, tuned)
