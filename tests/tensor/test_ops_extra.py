"""abs / maximum / minimum / where / log1p ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, ops
from tests.tensor.test_gradcheck import check_grad


def t(arr, requires_grad=False):
    return Tensor(np.asarray(arr, dtype=np.float32), requires_grad=requires_grad)


class TestForward:
    def test_abs(self):
        np.testing.assert_allclose(ops.abs(t([-2.0, 3.0])).data, [2.0, 3.0])

    def test_maximum(self):
        out = ops.maximum(t([1.0, 5.0]), t([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_minimum(self):
        out = ops.minimum(t([1.0, 5.0]), t([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_where(self):
        out = ops.where(np.array([True, False]), t([1.0, 1.0]), t([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_log1p(self):
        assert ops.log1p(t([0.0])).data[0] == pytest.approx(0.0)
        assert ops.log1p(t([np.e - 1.0])).data[0] == pytest.approx(1.0, rel=1e-5)


class TestGradients:
    def test_abs_grad(self):
        check_grad(ops.abs, (5,))

    def test_maximum_grad(self):
        check_grad(ops.maximum, (4,), (4,))

    def test_minimum_grad(self):
        check_grad(ops.minimum, (4,), (4,))

    def test_log1p_grad(self):
        check_grad(ops.log1p, (5,), positive=True)

    def test_where_routes_gradient(self):
        cond = np.array([True, False, True])
        a = t([1.0, 1.0, 1.0], requires_grad=True)
        b = t([2.0, 2.0, 2.0], requires_grad=True)
        ops.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_maximum_tie_goes_to_first(self):
        a = t([2.0], requires_grad=True)
        b = t([2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [0.0])

    def test_maximum_broadcast(self):
        a = Tensor(np.zeros((2, 3), np.float32), requires_grad=True)
        b = Tensor(np.ones(3, np.float32), requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])
