"""Property-based autograd invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, ops


def _tensor(rng, shape, requires_grad=True):
    return Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=requires_grad)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), rows=st.integers(1, 6), cols=st.integers(1, 6))
def test_grad_of_sum_is_ones(seed, rows, cols):
    rng = np.random.default_rng(seed)
    x = _tensor(rng, (rows, cols))
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((rows, cols)), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), scale=st.floats(-3, 3))
def test_backward_is_linear_in_seed_gradient(seed, scale):
    rng = np.random.default_rng(seed)
    x = _tensor(rng, (4,))
    y = ops.mul(x, x)
    y.backward(np.ones(4, np.float32))
    base = x.grad.copy()

    x2 = Tensor(x.data.copy(), requires_grad=True)
    y2 = ops.mul(x2, x2)
    y2.backward(np.full(4, scale, np.float32))
    np.testing.assert_allclose(x2.grad, scale * base, rtol=1e-4, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sum_rule(seed):
    """grad(f + g) == grad(f) + grad(g)."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(5,)).astype(np.float32)

    def grad_of(builder):
        x = Tensor(data.copy(), requires_grad=True)
        builder(x).sum().backward()
        return x.grad

    f = lambda x: ops.mul(x, x)
    g = lambda x: ops.exp(x)
    combined = lambda x: ops.add(ops.mul(x, x), ops.exp(x))
    np.testing.assert_allclose(
        grad_of(combined), grad_of(f) + grad_of(g), rtol=1e-4, atol=1e-4
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), depth=st.integers(1, 6))
def test_random_expression_chain_gradient(seed, depth):
    """A random unary chain matches its central-difference derivative."""
    rng = np.random.default_rng(seed)
    # smooth ops only: central differences are invalid at ReLU kinks
    unaries = [ops.tanh, ops.sigmoid, lambda t: ops.mul(t, t), ops.exp]
    picks = [unaries[i] for i in rng.integers(0, len(unaries), size=depth)]
    base = rng.normal(size=(3,)).astype(np.float32) * 0.5 + 0.3

    def run(arr):
        t = Tensor(arr, requires_grad=True)
        out = t
        for fn in picks:
            out = fn(out)
        return t, out.sum()

    t, out = run(base.copy())
    out.backward()
    eps = 1e-2
    idx = int(rng.integers(0, 3))
    # exp/square chains can reach ~1e12, where float32 central differences
    # are dominated by truncation error; only check the trustworthy regime
    assume(np.all(np.isfinite(t.grad)) and abs(float(t.grad[idx])) < 1e4)
    # The ±eps step must also move the loss by much more than one float32
    # ulp at the loss's own magnitude, or the difference quantises to 0
    # (e.g. loss ~2e9 has ulp 128 while grad*eps may be ~1).
    resolution = np.spacing(np.float32(abs(out.item()))) / (2 * eps)
    assume(resolution < 0.01 * max(abs(float(t.grad[idx])), 1.0))
    plus = base.copy()
    plus[idx] += eps
    minus = base.copy()
    minus[idx] -= eps
    numeric = (run(plus)[1].item() - run(minus)[1].item()) / (2 * eps)
    assert t.grad[idx] == pytest.approx(numeric, rel=2e-2, abs=5e-2)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 8), m=st.integers(1, 8))
def test_matmul_identity_preserves_gradient(seed, n, m):
    rng = np.random.default_rng(seed)
    x = _tensor(rng, (n, m))
    eye = Tensor(np.eye(m, dtype=np.float32))
    ops.matmul(x, eye).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((n, m)), atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_softmax_grad_orthogonal_to_ones(seed):
    """Softmax outputs sum to 1, so d(sum)/dlogits == 0."""
    rng = np.random.default_rng(seed)
    x = _tensor(rng, (2, 5))
    ops.softmax(x, axis=-1).sum().backward()
    np.testing.assert_allclose(x.grad, np.zeros((2, 5)), atol=1e-5)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_detached_branch_gets_no_gradient(seed):
    rng = np.random.default_rng(seed)
    x = _tensor(rng, (4,))
    frozen = ops.mul(x, x).detach()
    out = ops.mul(x, frozen).sum()
    out.backward()
    # gradient flows only through the non-detached factor: d/dx = frozen
    np.testing.assert_allclose(x.grad, frozen.data, rtol=1e-5)
