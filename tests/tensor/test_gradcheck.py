"""Numerical gradient checks for every differentiable op.

``check_grad`` perturbs each input coordinate and compares the central
difference against the autograd gradient.  Inputs are float32, so the
tolerance is loose but catches wrong formulas immediately.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, ops
from repro.tensor.ops_nn import batch_norm, nll_loss


def check_grad(fn, *shapes, rng=None, atol=2e-2, positive=False, scale=1.0):
    rng = rng or np.random.default_rng(0)
    arrays = []
    for shape in shapes:
        a = rng.normal(0.0, scale, size=shape)
        if positive:
            a = np.abs(a) + 0.5
        arrays.append(a.astype(np.float32))
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.sum().backward()

    eps = 1e-2
    for t, base in zip(tensors, arrays):
        flat = base.reshape(-1)
        for idx in rng.choice(flat.size, size=min(5, flat.size), replace=False):
            plus = base.copy().reshape(-1)
            plus[idx] += eps
            minus = base.copy().reshape(-1)
            minus[idx] -= eps
            f_plus = fn(*[Tensor(plus.reshape(base.shape)) if a is base else Tensor(a) for a in arrays]).sum().item()
            f_minus = fn(*[Tensor(minus.reshape(base.shape)) if a is base else Tensor(a) for a in arrays]).sum().item()
            numeric = (f_plus - f_minus) / (2 * eps)
            analytic = t.grad.reshape(-1)[idx]
            assert analytic == pytest.approx(numeric, abs=atol), (
                f"grad mismatch at {idx}: {analytic} vs {numeric}"
            )


class TestArithmeticGrads:
    def test_add(self):
        check_grad(ops.add, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(ops.add, (3, 4), (4,))

    def test_sub(self):
        check_grad(ops.sub, (2, 3), (2, 3))

    def test_mul(self):
        check_grad(ops.mul, (3, 4), (3, 4))

    def test_mul_broadcast_column(self):
        check_grad(ops.mul, (3, 4), (3, 1))

    def test_div(self):
        check_grad(ops.div, (3, 3), (3, 3), positive=True)

    def test_neg(self):
        check_grad(ops.neg, (4,))

    def test_pow(self):
        check_grad(lambda a: ops.pow_scalar(a, 3.0), (4,), positive=True)

    def test_exp(self):
        check_grad(ops.exp, (3, 3))

    def test_log(self):
        check_grad(ops.log, (5,), positive=True)

    def test_sqrt(self):
        check_grad(ops.sqrt, (5,), positive=True)

    def test_matmul(self):
        check_grad(ops.matmul, (3, 4), (4, 2))


class TestActivationGrads:
    def test_relu(self):
        check_grad(ops.relu, (4, 4))

    def test_leaky_relu(self):
        check_grad(lambda a: ops.leaky_relu(a, 0.1), (4, 4))

    def test_elu(self):
        check_grad(ops.elu, (4, 4))

    def test_sigmoid(self):
        check_grad(ops.sigmoid, (4, 4))

    def test_tanh(self):
        check_grad(ops.tanh, (4, 4))

    def test_softmax(self):
        check_grad(lambda a: ops.softmax(a, axis=-1), (3, 5))

    def test_log_softmax(self):
        check_grad(lambda a: ops.log_softmax(a, axis=-1), (3, 5))

    def test_clamp_min(self):
        check_grad(lambda a: ops.clamp_min(a, 0.25), (6,), positive=True)


class TestReductionGrads:
    def test_sum_all(self):
        check_grad(lambda a: ops.sum(a), (3, 4))

    def test_sum_axis(self):
        check_grad(lambda a: ops.sum(a, axis=0), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: ops.sum(a, axis=1, keepdims=True), (3, 4))

    def test_mean_all(self):
        check_grad(lambda a: ops.mean(a), (3, 4))

    def test_mean_axis(self):
        check_grad(lambda a: ops.mean(a, axis=-1), (2, 5))

    def test_max_axis(self):
        # distinct values avoid subgradient ties
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        t = Tensor(a, requires_grad=True)
        ops.max(t, axis=1).sum().backward()
        expected = np.zeros((3, 4), np.float32)
        expected[:, 3] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestShapeGrads:
    def test_reshape(self):
        check_grad(lambda a: ops.reshape(a, (6,)), (2, 3))

    def test_transpose(self):
        check_grad(lambda a: ops.transpose(a, 0, 1), (2, 3))

    def test_concat(self):
        check_grad(lambda a, b: ops.concat([a, b], axis=1), (2, 3), (2, 2))

    def test_stack(self):
        check_grad(lambda a, b: ops.stack([a, b], axis=0), (2, 3), (2, 3))


class TestNNGrads:
    def test_batch_norm_training(self):
        running_mean = np.zeros(4, np.float32)
        running_var = np.ones(4, np.float32)

        def fn(x, gamma, beta):
            return batch_norm(
                x, gamma, beta, running_mean.copy(), running_var.copy(), training=True
            )

        check_grad(fn, (8, 4), (4,), (4,), atol=5e-2)

    def test_batch_norm_eval(self):
        running_mean = np.full(4, 0.3, np.float32)
        running_var = np.full(4, 2.0, np.float32)

        def fn(x, gamma, beta):
            return batch_norm(
                x, gamma, beta, running_mean, running_var, training=False
            )

        check_grad(fn, (8, 4), (4,), (4,))

    def test_nll_loss(self):
        targets = np.array([0, 2, 1])
        check_grad(lambda lp: nll_loss(ops.log_softmax(lp), targets), (3, 4))
