"""Forward-value correctness of dense ops against numpy references."""

import numpy as np
import pytest

from repro.tensor import Tensor, ops


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float32))


class TestArithmetic:
    def test_add_values(self):
        np.testing.assert_allclose(ops.add(t([1, 2]), t([3, 4])).data, [4, 6])

    def test_broadcast_row(self):
        out = ops.add(t(np.zeros((2, 3))), t([1, 2, 3]))
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_matmul_matches_numpy(self, rng):
        a = rng.normal(size=(4, 5)).astype(np.float32)
        b = rng.normal(size=(5, 3)).astype(np.float32)
        np.testing.assert_allclose(ops.matmul(t(a), t(b)).data, a @ b, rtol=1e-5)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            ops.matmul(t([1.0, 2.0]), t([[1.0], [2.0]]))

    def test_matmul_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            ops.matmul(t(np.zeros((2, 3))), t(np.zeros((4, 2))))

    def test_div_by_array(self):
        np.testing.assert_allclose(ops.div(t([4.0, 9.0]), t([2.0, 3.0])).data, [2, 3])


class TestActivations:
    def test_relu_clamps_negatives(self):
        np.testing.assert_allclose(ops.relu(t([-1, 0, 2])).data, [0, 0, 2])

    def test_leaky_relu_slope(self):
        np.testing.assert_allclose(
            ops.leaky_relu(t([-2.0, 2.0]), 0.1).data, [-0.2, 2.0], rtol=1e-6
        )

    def test_elu_negative_branch(self):
        out = ops.elu(t([-1.0]), alpha=1.0)
        assert out.data[0] == pytest.approx(np.expm1(-1.0), rel=1e-5)

    def test_sigmoid_range_and_midpoint(self):
        out = ops.sigmoid(t([-50.0, 0.0, 50.0]))
        assert out.data[0] == pytest.approx(0.0, abs=1e-6)
        assert out.data[1] == pytest.approx(0.5)
        assert out.data[2] == pytest.approx(1.0, abs=1e-6)

    def test_softmax_rows_sum_to_one(self, rng):
        out = ops.softmax(t(rng.normal(size=(4, 6))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        out = ops.softmax(t([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(
            ops.log_softmax(t(x)).data, np.log(ops.softmax(t(x)).data), atol=1e-5
        )


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        x = rng.normal(size=(3, 4)).astype(np.float32)
        out = ops.sum(t(x), axis=1, keepdims=True)
        assert out.shape == (3, 1)
        np.testing.assert_allclose(out.data, x.sum(axis=1, keepdims=True), rtol=1e-5)

    def test_mean_all(self, rng):
        x = rng.normal(size=(5, 2)).astype(np.float32)
        assert ops.mean(t(x)).item() == pytest.approx(x.mean(), rel=1e-5)

    def test_max_matches_numpy(self, rng):
        x = rng.normal(size=(3, 7)).astype(np.float32)
        np.testing.assert_allclose(ops.max(t(x), axis=1).data, x.max(axis=1))


class TestShape:
    def test_reshape_roundtrip(self):
        x = t(np.arange(6).reshape(2, 3))
        assert ops.reshape(x, (3, 2)).shape == (3, 2)

    def test_reshape_launches_no_kernel(self, fresh_device):
        x = t(np.arange(6).reshape(2, 3))
        before = fresh_device.clock.elapsed
        ops.reshape(x, (6,))
        assert fresh_device.clock.elapsed == before

    def test_concat_values(self):
        out = ops.concat([t([1.0]), t([2.0, 3.0])], axis=0)
        np.testing.assert_allclose(out.data, [1, 2, 3])

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValueError):
            ops.concat([], axis=0)

    def test_stack_adds_axis(self):
        out = ops.stack([t([1.0, 2.0]), t([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)

    def test_transpose_values(self):
        x = t(np.arange(6).reshape(2, 3))
        np.testing.assert_allclose(ops.transpose(x).data, x.data.T)


class TestDropout:
    def test_identity_when_eval(self):
        x = t(np.ones(100))
        out = ops.dropout(x, 0.5, training=False)
        assert out is x

    def test_identity_when_p_zero(self):
        x = t(np.ones(10))
        assert ops.dropout(x, 0.0, training=True) is x

    def test_inverted_scaling_preserves_mean(self, rng):
        x = t(np.ones(20000))
        out = ops.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, np.full_like(kept, 1.0 / 0.7), rtol=1e-5)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ops.dropout(t([1.0]), 1.0, training=True)

    def test_mask_reused_in_backward(self, rng):
        x = Tensor(np.ones(1000, np.float32), requires_grad=True)
        out = ops.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)
