"""Scatter / gather / segment kernels: correctness, edge cases, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    Tensor,
    index_rows,
    scatter,
    scatter_max,
    scatter_mean,
    scatter_sum,
    segment_max,
    segment_mean,
    segment_reduce,
    segment_sum,
)


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float32))


class TestGather:
    def test_selects_rows(self):
        x = t([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        out = index_rows(x, np.array([2, 0, 2]))
        np.testing.assert_allclose(out.data, [[5, 6], [1, 2], [5, 6]])

    def test_backward_scatter_adds(self):
        x = Tensor(np.zeros((3, 1), np.float32), requires_grad=True)
        out = index_rows(x, np.array([1, 1, 0]))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0], [2.0], [0.0]])

    def test_rejects_float_index(self):
        with pytest.raises(TypeError):
            index_rows(t([[1.0]]), np.array([0.0]))


class TestScatter:
    def test_sum_values(self):
        out = scatter_sum(t([[1.0], [2.0], [3.0]]), np.array([0, 0, 2]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [3.0]])

    def test_mean_values_and_empty_bins(self):
        out = scatter_mean(t([[2.0], [4.0], [6.0]]), np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [6.0], [0.0]])

    def test_max_values_and_empty_bins_zero(self):
        out = scatter_max(t([[-5.0], [-1.0]]), np.array([0, 0]), 2)
        np.testing.assert_allclose(out.data, [[-1.0], [0.0]])

    def test_max_backward_routes_to_winner(self):
        src = Tensor(np.array([[1.0], [3.0], [2.0]], np.float32), requires_grad=True)
        scatter_max(src, np.array([0, 0, 0]), 1).sum().backward()
        np.testing.assert_allclose(src.grad, [[0.0], [1.0], [0.0]])

    def test_max_ties_share_gradient(self):
        src = Tensor(np.array([[2.0], [2.0]], np.float32), requires_grad=True)
        scatter_max(src, np.array([0, 0]), 1).sum().backward()
        np.testing.assert_allclose(src.grad, [[0.5], [0.5]])

    def test_mean_backward_scales_by_count(self):
        src = Tensor(np.ones((4, 1), np.float32), requires_grad=True)
        scatter_mean(src, np.array([0, 0, 0, 1]), 2).sum().backward()
        np.testing.assert_allclose(src.grad, [[1 / 3]] * 3 + [[1.0]], rtol=1e-5)

    def test_dispatch_and_unknown_reduce(self):
        src = t([[1.0]])
        assert scatter(src, np.array([0]), 1, "sum").data[0, 0] == 1.0
        with pytest.raises(ValueError):
            scatter(src, np.array([0]), 1, "median")

    def test_index_length_mismatch(self):
        with pytest.raises(ValueError):
            scatter_sum(t([[1.0], [2.0]]), np.array([0]), 2)

    def test_3d_sources(self):
        src = t(np.ones((4, 2, 3)))
        out = scatter_sum(src, np.array([0, 1, 1, 1]), 2)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data[1], np.full((2, 3), 3.0))


class TestSegment:
    def test_sum_with_empty_segments(self):
        src = t(np.arange(6).reshape(6, 1))
        out = segment_sum(src, np.array([0, 2, 2, 6]))
        np.testing.assert_allclose(out.data, [[1.0], [0.0], [14.0]])

    def test_trailing_empty_segment(self):
        src = t(np.ones((3, 1)))
        out = segment_sum(src, np.array([0, 3, 3]))
        np.testing.assert_allclose(out.data, [[3.0], [0.0]])

    def test_mean(self):
        src = t([[2.0], [4.0], [9.0]])
        out = segment_mean(src, np.array([0, 2, 3]))
        np.testing.assert_allclose(out.data, [[3.0], [9.0]])

    def test_max_with_empty(self):
        src = t([[-3.0], [-1.0]])
        out = segment_max(src, np.array([0, 2, 2]))
        np.testing.assert_allclose(out.data, [[-1.0], [0.0]])

    def test_sum_backward_repeats(self):
        src = Tensor(np.ones((4, 1), np.float32), requires_grad=True)
        out = segment_sum(src, np.array([0, 1, 4]))
        (out * t([[2.0], [3.0]])).sum().backward()
        np.testing.assert_allclose(src.grad, [[2.0], [3.0], [3.0], [3.0]])

    def test_mean_backward(self):
        src = Tensor(np.ones((4, 1), np.float32), requires_grad=True)
        segment_mean(src, np.array([0, 4])).sum().backward()
        np.testing.assert_allclose(src.grad, np.full((4, 1), 0.25))

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            segment_sum(t(np.ones((3, 1))), np.array([0, 2]))  # must end at 3
        with pytest.raises(ValueError):
            segment_sum(t(np.ones((3, 1))), np.array([0, 2, 1, 3]))

    def test_dispatch(self):
        src = t(np.ones((2, 1)))
        offsets = np.array([0, 2])
        for reduce in ("sum", "mean", "max"):
            assert segment_reduce(src, offsets, reduce).shape == (1, 1)
        with pytest.raises(ValueError):
            segment_reduce(src, offsets, "prod")


@settings(max_examples=30, deadline=None)
@given(
    n_src=st.integers(1, 30),
    n_bins=st.integers(1, 8),
    width=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_scatter_sum_matches_loop(n_src, n_bins, width, seed):
    rng = np.random.default_rng(seed)
    src = rng.normal(size=(n_src, width)).astype(np.float32)
    index = rng.integers(0, n_bins, size=n_src)
    out = scatter_sum(Tensor(src), index, n_bins).data
    expected = np.zeros((n_bins, width), np.float32)
    for row, i in zip(src, index):
        expected[i] += row
    np.testing.assert_allclose(out, expected, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    lengths=st.lists(st.integers(0, 6), min_size=1, max_size=8),
    seed=st.integers(0, 10_000),
)
def test_segment_sum_matches_split(lengths, seed):
    rng = np.random.default_rng(seed)
    total = sum(lengths)
    src = rng.normal(size=(total, 2)).astype(np.float32)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    out = segment_sum(Tensor(src), offsets).data
    expected = np.stack(
        [
            src[a:b].sum(axis=0) if b > a else np.zeros(2, np.float32)
            for a, b in zip(offsets[:-1], offsets[1:])
        ]
    )
    np.testing.assert_allclose(out, expected, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(
    n_src=st.integers(1, 25),
    n_bins=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_scatter_then_gather_grad_is_count(n_src, n_bins, seed):
    """d(sum scatter_sum(x))/dx is 1 for every source row."""
    rng = np.random.default_rng(seed)
    src = Tensor(rng.normal(size=(n_src, 3)).astype(np.float32), requires_grad=True)
    index = rng.integers(0, n_bins, size=n_src)
    scatter_sum(src, index, n_bins).sum().backward()
    np.testing.assert_allclose(src.grad, np.ones((n_src, 3)), atol=1e-5)
