"""Core Tensor behaviour: creation, autograd mechanics, graph traversal."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad


class TestCreation:
    def test_wraps_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.data.dtype == np.float32
        assert t.shape == (3,)
        assert t.size == 3
        assert t.nbytes == 12

    def test_rejects_tensor_input(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_requires_grad_default_off(self):
        assert not Tensor([1.0]).requires_grad

    def test_len_and_ndim(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4
        assert t.ndim == 2

    def test_item_scalar(self):
        assert Tensor([2.5]).item() == pytest.approx(2.5)

    def test_detach_shares_data_but_drops_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBackward:
    def test_scalar_backward_seeds_ones(self):
        a = Tensor([3.0], requires_grad=True)
        (a * a).sum().backward()
        assert a.grad == pytest.approx([6.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        with pytest.raises(RuntimeError):
            out.backward()
        out2 = a * 2.0
        out2.backward(np.ones(2, np.float32))
        assert a.grad == pytest.approx([2.0, 2.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = (a + a*a); dy/da = 1 + 2a
        a = Tensor([2.0], requires_grad=True)
        y = (a + a * a).sum()
        y.backward()
        assert a.grad == pytest.approx([5.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        assert a.grad == pytest.approx([5.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 1.0
        x.sum().backward()
        assert a.grad == pytest.approx([1.0])

    def test_tape_freed_after_backward(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        out = b.sum()
        out.backward()
        assert out._backward is None
        assert out._parents == ()


class TestNoGrad:
    def test_no_graph_recorded(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._backward is None

    def test_restores_mode_on_exception(self):
        from repro.tensor import grad_enabled

        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert grad_enabled()


class TestOperatorSugar:
    def test_radd_rsub_rmul_rdiv(self):
        a = Tensor([2.0])
        assert (1.0 + a).data == pytest.approx([3.0])
        assert (1.0 - a).data == pytest.approx([-1.0])
        assert (3.0 * a).data == pytest.approx([6.0])
        assert (4.0 / a).data == pytest.approx([2.0])

    def test_neg_and_pow(self):
        a = Tensor([2.0])
        assert (-a).data == pytest.approx([-2.0])
        assert (a**3).data == pytest.approx([8.0])

    def test_transpose_property(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.T.shape == (3, 2)
