"""GSpMM / GSDDMM fused kernels vs dense references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import CSRGraph, Tensor, gsddmm_dot, gspmm


def random_graph(rng, n_src=6, n_dst=5, n_edges=12):
    src = rng.integers(0, n_src, size=n_edges)
    dst = rng.integers(0, n_dst, size=n_edges)
    return src, dst, CSRGraph.from_edge_index(src, dst, n_src, n_dst)


def dense_adjacency(src, dst, n_src, n_dst, weights=None):
    a = np.zeros((n_dst, n_src), np.float32)
    w = np.ones(len(src), np.float32) if weights is None else weights
    for s, d, wi in zip(src, dst, w):
        a[d, s] += wi
    return a


class TestCSRGraph:
    def test_structure(self, rng):
        src = np.array([0, 1, 2, 0])
        dst = np.array([1, 1, 0, 2])
        g = CSRGraph.from_edge_index(src, dst, 3, 3)
        assert g.num_edges == 4
        np.testing.assert_array_equal(g.in_degrees(), [1, 2, 1])
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 1])

    def test_edge_ids_invert_sorting(self, rng):
        src, dst, g = random_graph(rng)
        # edge_ids maps CSR slots back to original edge order
        np.testing.assert_array_equal(np.sort(g.edge_ids), np.arange(g.num_edges))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edge_index(np.array([5]), np.array([0]), 3, 3)
        with pytest.raises(ValueError):
            CSRGraph.from_edge_index(np.array([0]), np.array([7]), 3, 3)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edge_index(np.array([0, 1]), np.array([0]), 3, 3)


class TestGSpMM:
    def test_sum_matches_dense(self, rng):
        src, dst, g = random_graph(rng)
        x = rng.normal(size=(6, 4)).astype(np.float32)
        out = gspmm(g, Tensor(x)).data
        np.testing.assert_allclose(out, dense_adjacency(src, dst, 6, 5) @ x, atol=1e-4)

    def test_mean_matches_dense(self, rng):
        src, dst, g = random_graph(rng)
        x = rng.normal(size=(6, 3)).astype(np.float32)
        deg = np.maximum(g.in_degrees(), 1).astype(np.float32)
        expected = (dense_adjacency(src, dst, 6, 5) @ x) / deg[:, None]
        np.testing.assert_allclose(gspmm(g, Tensor(x), reduce="mean").data, expected, atol=1e-4)

    def test_scalar_edge_weights(self, rng):
        src, dst, g = random_graph(rng)
        x = rng.normal(size=(6, 3)).astype(np.float32)
        w = rng.normal(size=len(src)).astype(np.float32)
        expected = dense_adjacency(src, dst, 6, 5, w) @ x
        out = gspmm(g, Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_column_edge_weights_same_as_flat(self, rng):
        src, dst, g = random_graph(rng)
        x = rng.normal(size=(6, 3)).astype(np.float32)
        w = rng.normal(size=len(src)).astype(np.float32)
        flat = gspmm(g, Tensor(x), Tensor(w)).data
        col = gspmm(g, Tensor(x), Tensor(w[:, None])).data
        np.testing.assert_allclose(flat, col, atol=1e-5)

    def test_multihead_edge_weights(self, rng):
        """(E, H, 1) weights against (N, H, D) features — the GAT pattern."""
        src, dst, g = random_graph(rng)
        h, d = 2, 3
        x = rng.normal(size=(6, h, d)).astype(np.float32)
        w = rng.normal(size=(len(src), h, 1)).astype(np.float32)
        out = gspmm(g, Tensor(x), Tensor(w)).data
        expected = np.zeros((5, h, d), np.float32)
        for e, (s, dd_) in enumerate(zip(src, dst)):
            expected[dd_] += w[e] * x[s]
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_grad_x_matches_dense(self, rng):
        src, dst, g = random_graph(rng)
        x = Tensor(rng.normal(size=(6, 3)).astype(np.float32), requires_grad=True)
        gspmm(g, x).sum().backward()
        expected = dense_adjacency(src, dst, 6, 5).T @ np.ones((5, 3), np.float32)
        np.testing.assert_allclose(x.grad, expected, atol=1e-4)

    def test_grad_weights(self, rng):
        src, dst, g = random_graph(rng)
        x = rng.normal(size=(6, 3)).astype(np.float32)
        w = Tensor(rng.normal(size=len(src)).astype(np.float32), requires_grad=True)
        gspmm(g, Tensor(x), w).sum().backward()
        # dL/dw_e = sum_f x[src(e), f]
        np.testing.assert_allclose(w.grad, x[src].sum(axis=1), atol=1e-4)

    def test_rejects_bad_reduce(self, rng):
        _, _, g = random_graph(rng)
        with pytest.raises(ValueError):
            gspmm(g, Tensor(np.zeros((6, 2))), reduce="prod")

    def test_max_reduce_matches_loop(self, rng):
        src, dst, g = random_graph(rng)
        x = rng.normal(size=(6, 3)).astype(np.float32)
        out = gspmm(g, Tensor(x), reduce="max").data
        expected = np.zeros((5, 3), np.float32)
        for d in range(5):
            sources = src[dst == d]
            if len(sources):
                expected[d] = x[sources].max(axis=0)
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_max_reduce_gradient_routes_to_winners(self, rng):
        g = CSRGraph.from_edge_index(np.array([0, 1]), np.array([2, 2]), 3, 3)
        x = Tensor(np.array([[1.0], [5.0], [0.0]], np.float32), requires_grad=True)
        gspmm(g, x, reduce="max").sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0], [1.0], [0.0]])

    def test_rejects_row_mismatch(self, rng):
        _, _, g = random_graph(rng)
        with pytest.raises(ValueError):
            gspmm(g, Tensor(np.zeros((3, 2))))

    def test_is_single_forward_kernel(self, rng, fresh_device):
        _, _, g = random_graph(rng)
        x = Tensor(np.ones((6, 2), np.float32))
        fresh_device.profiler.enabled = True
        fresh_device.profiler.clear()
        gspmm(g, x)
        names = [r.name for r in fresh_device.profiler.records]
        assert names == ["gspmm"]


class TestGSDDMM:
    def test_dot_matches_loop(self, rng):
        src, dst, g = random_graph(rng)
        a = rng.normal(size=(6, 4)).astype(np.float32)
        b = rng.normal(size=(5, 4)).astype(np.float32)
        out = gsddmm_dot(g, Tensor(a), Tensor(b)).data
        expected = np.array([a[s] @ b[d] for s, d in zip(src, dst)], np.float32)
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_dot_multihead_shape(self, rng):
        src, dst, g = random_graph(rng)
        a = rng.normal(size=(6, 2, 4)).astype(np.float32)
        b = rng.normal(size=(5, 2, 4)).astype(np.float32)
        out = gsddmm_dot(g, Tensor(a), Tensor(b))
        assert out.shape == (g.num_edges, 2)

    def test_dot_gradients(self, rng):
        src, dst, g = random_graph(rng)
        a = Tensor(rng.normal(size=(6, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=(5, 3)).astype(np.float32), requires_grad=True)
        gsddmm_dot(g, a, b).sum().backward()
        ga = np.zeros((6, 3), np.float32)
        gb = np.zeros((5, 3), np.float32)
        for s, d in zip(src, dst):
            ga[s] += b.data[d]
            gb[d] += a.data[s]
        np.testing.assert_allclose(a.grad, ga, atol=1e-4)
        np.testing.assert_allclose(b.grad, gb, atol=1e-4)

    def test_rejects_row_mismatch(self, rng):
        _, _, g = random_graph(rng)
        with pytest.raises(ValueError):
            gsddmm_dot(g, Tensor(np.zeros((2, 3))), Tensor(np.zeros((5, 3))))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 10),
    n_edges=st.integers(1, 30),
    width=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_gspmm_equals_dense_spmv_property(n, n_edges, width, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=n_edges)
    dst = rng.integers(0, n, size=n_edges)
    g = CSRGraph.from_edge_index(src, dst, n, n)
    x = rng.normal(size=(n, width)).astype(np.float32)
    out = gspmm(g, Tensor(x)).data
    expected = dense_adjacency(src, dst, n, n) @ x
    np.testing.assert_allclose(out, expected, atol=1e-3)
