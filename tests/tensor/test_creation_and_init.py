"""Tensor creation helpers and weight initialisers."""

import numpy as np
import pytest

from repro.nn import init
from repro.tensor import creation


class TestCreation:
    def test_zeros_ones_full(self):
        assert creation.zeros((2, 3)).data.sum() == 0
        assert creation.ones(4).data.sum() == 4
        assert np.all(creation.full((2, 2), 7.0).data == 7.0)

    def test_int_shape_accepted(self):
        assert creation.zeros(5).shape == (5,)

    def test_randn_seeded(self):
        a = creation.randn((3, 3), rng=np.random.default_rng(5))
        b = creation.randn((3, 3), rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.data, b.data)

    def test_randn_std(self):
        t = creation.randn(20000, rng=np.random.default_rng(0), std=2.0)
        assert t.data.std() == pytest.approx(2.0, rel=0.05)

    def test_uniform_bounds(self):
        t = creation.uniform(1000, -2.0, 3.0, rng=np.random.default_rng(0))
        assert t.data.min() >= -2.0
        assert t.data.max() <= 3.0

    def test_requires_grad_flag(self):
        assert creation.zeros(3, requires_grad=True).requires_grad

    def test_dtype_float32(self):
        assert creation.ones((2, 2)).data.dtype == np.float32


class TestInit:
    def test_glorot_limits(self):
        w = init.glorot_uniform((100, 50), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit
        assert w.dtype == np.float32

    def test_glorot_nondegenerate(self):
        w = init.glorot_uniform((64, 64), np.random.default_rng(0))
        assert w.std() > 0.01

    def test_kaiming_limits(self):
        w = init.kaiming_uniform((100, 10), np.random.default_rng(0))
        assert np.abs(w).max() <= np.sqrt(1.0 / 100)

    def test_zeros_ones(self):
        assert init.zeros((3,)).sum() == 0
        assert init.ones((3,)).sum() == 3

    def test_seeded_reproducibility(self):
        a = init.glorot_uniform((8, 8), np.random.default_rng(42))
        b = init.glorot_uniform((8, 8), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
