"""Optimizers and the plateau LR schedule."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam, ReduceLROnPlateau


def quadratic_param(start=5.0):
    return Parameter(np.array([start], np.float32))


class TestAdam:
    def test_minimises_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.grad = 2.0 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |first step| == lr regardless of grad scale.
        p = quadratic_param(0.0)
        opt = Adam([p], lr=0.05)
        p.grad = np.array([123.0], np.float32)
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.05, rel=1e-3)

    def test_weight_decay_pulls_to_zero(self):
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(100):
            p.grad = np.zeros(1, np.float32)
            opt.step()
        assert abs(p.data[0]) < 0.5

    def test_skips_params_without_grad(self):
        p = quadratic_param(3.0)
        opt = Adam([p], lr=0.1)
        opt.step()
        assert p.data[0] == pytest.approx(3.0)

    def test_zero_grad(self):
        p = quadratic_param()
        p.grad = np.ones(1, np.float32)
        Adam([p], lr=0.1).zero_grad()
        assert p.grad is None

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)


class TestSGD:
    def test_plain_step(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.5)
        p.grad = np.array([1.0], np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.5)

    def test_momentum_accumulates(self):
        p = quadratic_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            p.grad = np.array([1.0], np.float32)
            opt.step()
        # steps: -1, then -(0.9 + 1) => total -2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_minimises_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad = 2.0 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestReduceLROnPlateau:
    def make(self, patience=2, factor=0.5, min_lr=0.0):
        opt = Adam([quadratic_param()], lr=1.0)
        return opt, ReduceLROnPlateau(opt, factor=factor, patience=patience, min_lr=min_lr)

    def test_no_decay_while_improving(self):
        opt, sched = self.make()
        for loss in [5.0, 4.0, 3.0, 2.0]:
            sched.step(loss)
        assert opt.lr == 1.0

    def test_decays_after_patience_exceeded(self):
        opt, sched = self.make(patience=2)
        sched.step(1.0)
        for _ in range(3):  # 3 bad epochs > patience 2
            sched.step(2.0)
        assert opt.lr == 0.5

    def test_counter_resets_on_improvement(self):
        opt, sched = self.make(patience=2)
        sched.step(1.0)
        sched.step(2.0)
        sched.step(2.0)
        sched.step(0.5)  # improvement resets
        sched.step(2.0)
        sched.step(2.0)
        assert opt.lr == 1.0

    def test_min_lr_clamp(self):
        opt, sched = self.make(patience=0, min_lr=0.4)
        sched.step(1.0)
        for _ in range(10):
            sched.step(2.0)
        assert opt.lr == pytest.approx(0.4)

    def test_paper_stopping_protocol(self):
        """factor 0.5 from 1e-3 crosses 1e-6 after 10 decays."""
        opt = Adam([quadratic_param()], lr=1e-3)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched.step(1.0)
        decays = 0
        while opt.lr > 1e-6:
            sched.step(2.0)
            decays += 1
        assert decays == 10

    def test_invalid_factor(self):
        opt = Adam([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(opt, factor=1.5)
