"""Train/eval mode round-trips across both framework packs.

Serving runs models under ``eval()``; these tests pin the inference
correctness prerequisite: Dropout becomes the identity and BatchNorm
freezes its running statistics — identically in the PyG-style and
DGL-style implementations — and ``train()`` restores training behaviour.
"""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import graph_config

FRAMEWORKS = ("pygx", "dglx")


def build(framework, config, seed=0):
    if framework == "pygx":
        from repro.pygx import build_model
    else:
        from repro.dglx import build_model
    return build_model(config, np.random.default_rng(seed))


def collate(framework, graphs):
    if framework == "pygx":
        from repro.pygx import Batch, Data

        return Batch.from_data_list([Data.from_sample(g) for g in graphs])
    from repro.dglx import batch

    return batch(list(graphs))


@pytest.fixture(scope="module")
def graphs():
    return enzymes(seed=0, num_graphs=8).graphs


@pytest.mark.parametrize("framework", FRAMEWORKS)
class TestDropoutModeSwitch:
    def config(self):
        return graph_config("gcn", in_dim=18, n_classes=6, dropout=0.5)

    def test_train_mode_is_stochastic(self, framework, graphs):
        model = build(framework, self.config())
        inputs = collate(framework, graphs)
        out1 = model(inputs).data.copy()
        out2 = model(collate(framework, graphs)).data.copy()
        assert not np.allclose(out1, out2)

    def test_eval_mode_is_deterministic(self, framework, graphs):
        model = build(framework, self.config()).eval()
        out1 = model(collate(framework, graphs)).data.copy()
        out2 = model(collate(framework, graphs)).data.copy()
        np.testing.assert_array_equal(out1, out2)

    def test_round_trip_restores_training_flag_everywhere(self, framework, graphs):
        model = build(framework, self.config())
        assert all(m.training for m in model.modules())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())
        # and the round-tripped model is stochastic again
        out1 = model(collate(framework, graphs)).data.copy()
        out2 = model(collate(framework, graphs)).data.copy()
        assert not np.allclose(out1, out2)


@pytest.mark.parametrize("framework", FRAMEWORKS)
class TestBatchNormModeSwitch:
    def config(self):
        return graph_config("gin", in_dim=18, n_classes=6)

    def test_train_forward_updates_running_stats(self, framework, graphs):
        model = build(framework, self.config())
        before = model.conv1.bn.running_mean.copy()
        model(collate(framework, graphs))
        assert not np.allclose(model.conv1.bn.running_mean, before)

    def test_eval_forward_freezes_running_stats(self, framework, graphs):
        model = build(framework, self.config())
        model(collate(framework, graphs))  # give the buffers a real update
        model.eval()
        frozen = model.conv1.bn.running_mean.copy()
        out1 = model(collate(framework, graphs)).data.copy()
        out2 = model(collate(framework, graphs)).data.copy()
        np.testing.assert_array_equal(model.conv1.bn.running_mean, frozen)
        np.testing.assert_array_equal(out1, out2)


@pytest.mark.parametrize("model_name", ["gcn", "gin"])
def test_mode_switch_behaviour_identical_across_frameworks(model_name, graphs):
    """Both packs flip the same switches: stochastic+stats-updating in
    train, deterministic+frozen in eval."""
    config = graph_config(model_name, in_dim=18, n_classes=6, dropout=0.5)
    for framework in FRAMEWORKS:
        model = build(framework, config)
        train_out = [model(collate(framework, graphs)).data.copy() for _ in range(2)]
        assert not np.allclose(train_out[0], train_out[1]), framework
        model.eval()
        eval_out = [model(collate(framework, graphs)).data.copy() for _ in range(2)]
        np.testing.assert_array_equal(eval_out[0], eval_out[1], err_msg=framework)
