"""BatchNorm, activations, losses, functional helpers."""

import numpy as np
import pytest

from repro.nn import BatchNorm1d, ELU, LeakyReLU, ReLU, Sigmoid, Tanh, accuracy, cross_entropy
from repro.nn.functional import degree_normalize, l2_normalize
from repro.tensor import Tensor


class TestBatchNorm:
    def test_normalises_batch_in_training(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(5.0, 2.0, size=(64, 3)).astype(np.float32))
        out = bn(x)
        assert out.data.mean(axis=0) == pytest.approx(np.zeros(3), abs=1e-4)
        assert out.data.std(axis=0) == pytest.approx(np.ones(3), abs=1e-2)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.full((10, 2), 4.0, np.float32))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, [2.0, 2.0])

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(1, eps=0.0)
        bn.running_mean[:] = 1.0
        bn.running_var[:] = 4.0
        bn.eval()
        out = bn(Tensor(np.array([[3.0]], np.float32)))
        assert out.data[0, 0] == pytest.approx(1.0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros(3, np.float32)))

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)

    def test_gamma_beta_learnable(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(8, 3)).astype(np.float32), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestActivationsModules:
    @pytest.mark.parametrize(
        "module,value,expected",
        [
            (ReLU(), -1.0, 0.0),
            (LeakyReLU(0.5), -2.0, -1.0),
            (Sigmoid(), 0.0, 0.5),
            (Tanh(), 0.0, 0.0),
        ],
    )
    def test_values(self, module, value, expected):
        out = module(Tensor(np.array([value], np.float32)))
        assert out.data[0] == pytest.approx(expected)

    def test_elu_positive_identity(self):
        out = ELU()(Tensor(np.array([2.0], np.float32)))
        assert out.data[0] == pytest.approx(2.0)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4), np.float32))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0), rel=1e-5)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0]], np.float32))
        assert cross_entropy(logits, np.array([0])).item() == pytest.approx(0.0, abs=1e-4)

    def test_cross_entropy_grad_shape(self):
        logits = Tensor(np.zeros((3, 4), np.float32), requires_grad=True)
        cross_entropy(logits, np.array([0, 1, 2])).backward()
        assert logits.grad.shape == (3, 4)
        # gradient rows sum to zero for softmax CE
        np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(3), atol=1e-6)

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]], np.float32))
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(Tensor(np.zeros((0, 2), np.float32)), np.array([])) == 0.0


class TestFunctional:
    def test_l2_normalize_unit_rows(self, rng):
        x = Tensor(rng.normal(size=(5, 4)).astype(np.float32))
        out = l2_normalize(x)
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=1), np.ones(5), rtol=1e-4
        )

    def test_l2_normalize_zero_row_safe(self):
        x = Tensor(np.zeros((1, 3), np.float32))
        out = l2_normalize(x)
        assert np.all(np.isfinite(out.data))

    def test_degree_normalize(self):
        x = Tensor(np.ones((2, 2), np.float32))
        deg = Tensor(np.array([[4.0], [1.0]], np.float32))
        out = degree_normalize(x, deg)
        np.testing.assert_allclose(out.data, [[0.5, 0.5], [1.0, 1.0]])
