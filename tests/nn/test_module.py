"""Module system: registration, traversal, modes, state dicts, scopes."""

import numpy as np
import pytest

from repro.device import current_device
from repro.nn import BatchNorm1d, Dropout, Linear, Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1, np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_named_parameters_walks_tree(self):
        names = dict(Net().named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale"}

    def test_num_parameters(self):
        assert Net().num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_param_bytes(self):
        assert Net().param_bytes() == Net().num_parameters() * 4

    def test_modules_iterates_all(self):
        assert len(list(Net().modules())) == 3

    def test_scope_name_set_on_attribute_assignment(self):
        net = Net()
        assert net.fc1._scope_name == "fc1"

    def test_buffers_registered(self):
        bn = BatchNorm1d(4)
        names = dict(bn.named_buffers())
        assert set(names) == {"running_mean", "running_var"}


class TestModes:
    def test_train_eval_propagates(self):
        net = Net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = Net()
        x = Tensor(np.ones((2, 4), np.float32))
        net(x).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Net(), Net()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["scale"] = np.zeros(7, np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_is_inplace(self):
        a, b = Net(), Net()
        original = b.fc1.weight
        b.load_state_dict(a.state_dict())
        assert b.fc1.weight is original


class TestScopes:
    def test_call_pushes_scope(self, fresh_device):
        events = []

        class Probe(Module):
            def forward(self):
                events.append(current_device().current_scope)

        class Wrap(Module):
            def __init__(self):
                super().__init__()
                self.inner = Probe()

            def forward(self):
                self.inner()

        Wrap()()
        assert events == [("Wrap", "inner")]


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 3, rng=rng), Linear(3, 2, rng=rng))
        out = seq(Tensor(np.ones((1, 4), np.float32)))
        assert out.shape == (1, 2)
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)

    def test_sequential_registers_parameters(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        assert len(list(seq.parameters())) == 4

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        ml.append(Linear(2, 2))
        assert len(ml) == 3
        assert len(list(ml.parameters())) == 6
        with pytest.raises(RuntimeError):
            ml(Tensor(np.ones((1, 2))))


class TestLinear:
    def test_affine_values(self):
        lin = Linear(2, 2, rng=np.random.default_rng(0))
        lin.weight.data[:] = np.array([[1.0, 2.0], [3.0, 4.0]], np.float32)
        lin.bias.data[:] = np.array([10.0, 20.0], np.float32)
        out = lin(Tensor(np.array([[1.0, 1.0]], np.float32)))
        np.testing.assert_allclose(out.data, [[14.0, 26.0]])

    def test_no_bias(self):
        lin = Linear(3, 2, bias=False)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestDropoutModule:
    def test_eval_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(np.ones(10, np.float32))
        assert d(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)
