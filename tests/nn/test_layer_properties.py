"""Property-based invariants of NN layers and graph normalisations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import BatchNorm1d
from repro.nn.functional import l2_normalize
from repro.pygx import edge_softmax
from repro.tensor import Tensor, ops, scatter_mean


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shift=st.floats(-10, 10),
    scale=st.floats(0.1, 10),
)
def test_batchnorm_invariant_to_affine_input_changes(seed, shift, scale):
    """BN(a*x + b) == BN(x) in training mode (per-feature affine removed)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3)).astype(np.float32)
    bn = BatchNorm1d(3)
    base = bn(Tensor(x)).data
    bn2 = BatchNorm1d(3)
    moved = bn2(Tensor(x * scale + shift)).data
    np.testing.assert_allclose(base, moved, atol=5e-3)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), shift=st.floats(-20, 20))
def test_softmax_translation_invariance(seed, shift):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(4, 5)).astype(np.float32)
    a = ops.softmax(Tensor(x)).data
    b = ops.softmax(Tensor(x + np.float32(shift))).data
    np.testing.assert_allclose(a, b, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_l2_normalize_idempotent(seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(6, 4)).astype(np.float32))
    once = l2_normalize(x)
    twice = l2_normalize(once)
    np.testing.assert_allclose(once.data, twice.data, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_src=st.integers(1, 30), n_bins=st.integers(1, 6))
def test_scatter_mean_bounded_by_contributions(seed, n_src, n_bins):
    rng = np.random.default_rng(seed)
    src = rng.normal(size=(n_src, 2)).astype(np.float32)
    index = rng.integers(0, n_bins, size=n_src)
    out = scatter_mean(Tensor(src), index, n_bins).data
    for b in range(n_bins):
        members = src[index == b]
        if len(members):
            assert np.all(out[b] <= members.max(axis=0) + 1e-5)
            assert np.all(out[b] >= members.min(axis=0) - 1e-5)
        else:
            np.testing.assert_array_equal(out[b], np.zeros(2, np.float32))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_edges=st.integers(1, 40), n_nodes=st.integers(1, 8))
def test_edge_softmax_is_distribution_per_destination(seed, n_edges, n_nodes):
    rng = np.random.default_rng(seed)
    dst = rng.integers(0, n_nodes, size=n_edges)
    scores = Tensor(rng.normal(size=(n_edges, 2)).astype(np.float32))
    out = edge_softmax(scores, dst, n_nodes).data
    assert np.all(out > 0.0) and np.all(out <= 1.0 + 1e-6)
    sums = np.zeros((n_nodes, 2), np.float32)
    np.add.at(sums, dst, out)
    for node in range(n_nodes):
        if (dst == node).any():
            np.testing.assert_allclose(sums[node], [1.0, 1.0], rtol=1e-4)
