"""ScaleNodeDataset construction: determinism, splits, knobs, errors."""

import numpy as np
import pytest

from repro.scale import make_scale_dataset


class TestDeterminism:
    def test_bitwise_identical_for_same_seed(self):
        a = make_scale_dataset(1500, avg_degree=5.0, seed=4)
        b = make_scale_dataset(1500, avg_degree=5.0, seed=4)
        np.testing.assert_array_equal(a.graph.indptr, b.graph.indptr)
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)
        np.testing.assert_array_equal(a.graph.x, b.graph.x)
        np.testing.assert_array_equal(a.train_idx, b.train_idx)

    def test_seed_changes_graph(self):
        a = make_scale_dataset(1500, seed=4)
        b = make_scale_dataset(1500, seed=5)
        assert not np.array_equal(a.graph.indices, b.graph.indices)


class TestStructure:
    def test_splits_disjoint_and_sized(self):
        ds = make_scale_dataset(2000, train_fraction=0.1, val_fraction=0.05,
                                test_fraction=0.05, seed=0)
        assert len(ds.train_idx) == 200
        assert len(ds.val_idx) == 100
        assert len(ds.test_idx) == 100
        all_idx = np.concatenate([ds.train_idx, ds.val_idx, ds.test_idx])
        assert len(np.unique(all_idx)) == len(all_idx)

    def test_labels_are_contiguous_blocks(self):
        ds = make_scale_dataset(1000, n_classes=4, seed=0)
        y = ds.graph.y
        assert np.all(np.diff(y) >= 0)  # non-decreasing blocks
        assert len(np.unique(y)) == 4

    def test_self_loops_knob(self):
        plain = make_scale_dataset(500, seed=0)
        looped = make_scale_dataset(500, seed=0, self_loops=True)
        diag = [v for v in range(500) if v in looped.graph.in_neighbors(v)]
        assert len(diag) == 500
        assert looped.graph.num_edges == plain.graph.num_edges + 500

    def test_rmat_abc_knob_raises_homophily(self):
        def homophily(ds):
            ei = ds.graph.edge_index()
            y = ds.graph.y
            return float((y[ei[0]] == y[ei[1]]).mean())

        base = make_scale_dataset(2000, n_classes=4, seed=0)
        skewed = make_scale_dataset(2000, n_classes=4, seed=0,
                                    rmat_abc=(0.75, 0.10, 0.10))
        assert homophily(skewed) > homophily(base)

    def test_chung_lu_generator(self):
        ds = make_scale_dataset(1000, generator="chung_lu", seed=0)
        assert ds.graph.num_nodes == 1000
        assert ds.name == "chung_lu-1000"

    def test_to_node_dataset_round_trip(self):
        ds = make_scale_dataset(300, seed=0)
        full = ds.to_node_dataset()
        assert full.num_classes == ds.num_classes
        assert full.graph.num_edges == ds.graph.num_edges
        np.testing.assert_array_equal(full.train_idx, ds.train_idx)


class TestErrors:
    def test_unknown_generator(self):
        with pytest.raises(ValueError):
            make_scale_dataset(100, generator="barabasi")

    def test_fractions_exceed_one(self):
        with pytest.raises(ValueError):
            make_scale_dataset(100, train_fraction=0.8, val_fraction=0.2,
                               test_fraction=0.2)

    def test_fewer_nodes_than_classes(self):
        with pytest.raises(ValueError):
            make_scale_dataset(3, n_classes=8)
