"""Degree-balanced row-block partitioner invariants."""

import numpy as np
import pytest

from repro.scale import degree_balanced_partition, make_scale_dataset


@pytest.fixture(scope="module")
def graph():
    return make_scale_dataset(2000, avg_degree=6.0, seed=1).graph


@pytest.mark.parametrize("k", [1, 2, 5, 16])
class TestInvariants:
    def test_every_node_in_exactly_one_part(self, graph, k):
        partition = degree_balanced_partition(graph, k)
        assignment = partition.assignment()
        covered = np.zeros(graph.num_nodes, dtype=int)
        for part in partition.parts:
            assert part.lo < part.hi  # no empty parts
            covered[part.lo:part.hi] += 1
            assert np.all(assignment[part.lo:part.hi] == part.part_id)
        np.testing.assert_array_equal(covered, 1)

    def test_edges_fully_covered(self, graph, k):
        partition = degree_balanced_partition(graph, k)
        assert sum(p.num_edges for p in partition.parts) == graph.num_edges

    def test_halo_covers_every_cut_edge(self, graph, k):
        partition = degree_balanced_partition(graph, k)
        for part in partition.parts:
            sources = graph.indices[graph.indptr[part.lo]:graph.indptr[part.hi]]
            outside = sources[(sources < part.lo) | (sources >= part.hi)]
            # Every ghost source is in the halo, the halo holds nothing
            # else, and it is sorted + unique (searchsorted relies on it).
            np.testing.assert_array_equal(part.halo, np.unique(outside))
            assert part.cut_edges == len(outside)

    def test_deterministic(self, graph, k):
        a = degree_balanced_partition(graph, k)
        b = degree_balanced_partition(graph, k)
        for pa, pb in zip(a.parts, b.parts):
            assert (pa.lo, pa.hi) == (pb.lo, pb.hi)
            np.testing.assert_array_equal(pa.halo, pb.halo)


class TestDegenerate:
    def test_k_equals_one_has_no_cut(self, graph):
        partition = degree_balanced_partition(graph, 1)
        (part,) = partition.parts
        assert (part.lo, part.hi) == (0, graph.num_nodes)
        assert part.cut_edges == 0 and len(part.halo) == 0
        stats = partition.stats()
        assert stats.cut_edges == 0
        assert stats.replication_factor == 1.0

    def test_k_above_node_count_clamps(self, graph):
        partition = degree_balanced_partition(graph, graph.num_nodes + 50)
        assert partition.k == graph.num_nodes
        assert all(p.num_owned == 1 for p in partition.parts)

    def test_k_below_one_raises(self, graph):
        with pytest.raises(ValueError):
            degree_balanced_partition(graph, 0)

    def test_empty_graph(self):
        from repro.graph import CSRBigGraph

        empty = CSRBigGraph(np.zeros(1, np.int64), np.empty(0, np.int64))
        assert degree_balanced_partition(empty, 4).parts == []


class TestBalance:
    def test_edge_balance_beats_naive_split_on_skewed_graph(self):
        # Power-law graph: equal node ranges pile the hub edges into one
        # part; the edge-prefix cut keeps every part near the mean.
        ds = make_scale_dataset(5000, avg_degree=8.0, generator="chung_lu",
                                seed=3)
        k = 8
        stats = degree_balanced_partition(ds.graph, k).stats()
        assert stats.edge_balance < 1.5

        bounds = np.linspace(0, ds.graph.num_nodes, k + 1).astype(int)
        naive = [
            ds.graph.indptr[hi] - ds.graph.indptr[lo]
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        naive_balance = max(naive) / (sum(naive) / k)
        assert stats.edge_balance < naive_balance

    def test_stats_shapes(self, graph):
        stats = degree_balanced_partition(graph, 4).stats()
        assert stats.k == 4
        assert len(stats.edge_counts) == 4
        assert sum(stats.node_counts) == graph.num_nodes
        assert stats.replication_factor >= 1.0
