"""Partitioned halo-exchange inference must reproduce the full-graph
forward pass exactly (up to float accumulation order)."""

import numpy as np
import pytest

from repro.device import Device, use_device
from repro.models import node_config
from repro.scale import (
    degree_balanced_partition,
    full_graph_training_memory_floor,
    make_scale_dataset,
    part_local_graph,
    partitioned_inference,
)


@pytest.fixture(scope="module")
def dataset():
    return make_scale_dataset(
        800, avg_degree=6.0, n_classes=4, n_features=16, seed=0,
        self_loops=True,
    )


def _build_model(framework, model_name, dataset, seed=0):
    config = node_config(model_name, in_dim=dataset.num_features,
                         n_classes=dataset.num_classes)
    rng = np.random.default_rng(seed)
    if framework == "pygx":
        from repro.pygx import build_model

        return build_model(config, rng)
    from repro.dglx import build_model

    return build_model(config, rng)


def _full_forward(framework, model, dataset):
    """Reference logits: the whole graph resident in one device batch."""
    from repro.train.node_trainer import _to_device

    sample = dataset.to_node_dataset().graph
    model.eval()
    with use_device(Device()):
        return model(_to_device(framework, sample)).data


class TestPartLocalGraph:
    def test_local_edges_map_back_to_global(self, dataset):
        graph = dataset.graph
        partition = degree_balanced_partition(graph, 5)
        for part in partition.parts:
            nodes, src, dst, num_owned = part_local_graph(graph, part)
            assert num_owned == part.num_owned
            np.testing.assert_array_equal(
                nodes, np.concatenate([np.arange(part.lo, part.hi), part.halo])
            )
            # Every local edge, mapped back to global ids, is an in-edge
            # of an owned node — and all such in-edges are present.
            src_g, dst_g = nodes[src], nodes[dst]
            assert np.all((dst_g >= part.lo) & (dst_g < part.hi))
            assert len(src_g) == part.num_edges
            for v in range(part.lo, min(part.lo + 20, part.hi)):
                np.testing.assert_array_equal(
                    np.sort(src_g[dst_g == v]),
                    np.sort(graph.in_neighbors(v)),
                )


class TestPartitionedInferenceParity:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("model_name", ["gcn", "sage"])
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_full_forward(self, dataset, framework, model_name, k):
        model = _build_model(framework, model_name, dataset)
        expected = _full_forward(framework, model, dataset)

        device = Device()
        partition = degree_balanced_partition(dataset.graph, k)
        with use_device(device):
            logits = partitioned_inference(
                framework, model, dataset.graph, partition
            )
        assert logits.shape == expected.shape
        np.testing.assert_allclose(logits, expected, atol=1e-4, rtol=1e-4)

    def test_peak_memory_shrinks_with_more_parts(self, dataset):
        model = _build_model("pygx", "gcn", dataset)

        def peak(k):
            device = Device()
            with use_device(device):
                partitioned_inference(
                    "pygx", model, dataset.graph,
                    degree_balanced_partition(dataset.graph, k),
                )
            return device.memory.peak

        assert peak(8) < peak(1)

    def test_unknown_framework_raises(self, dataset):
        with pytest.raises(ValueError):
            partitioned_inference("jax", None, dataset.graph,
                                  degree_balanced_partition(dataset.graph, 2))


class TestMemoryFloor:
    def test_floor_counts_activations_and_messages(self):
        config = node_config("gcn", in_dim=32, n_classes=8)
        floor = full_graph_training_memory_floor(1000, 5000, config)
        widths = [32, config.hidden, 8]
        assert floor == 1000 * sum(widths) * 4 + 5000 * max(widths) * 4

    def test_floor_scales_with_graph(self):
        config = node_config("sage", in_dim=32, n_classes=8)
        small = full_graph_training_memory_floor(10_000, 80_000, config)
        big = full_graph_training_memory_floor(1_000_000, 8_000_000, config)
        assert big > 90 * small
