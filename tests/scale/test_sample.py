"""Fanout neighbor sampling: caps, determinism, conventions, phase cost."""

import numpy as np
import pytest

from repro.device import Device, use_device
from repro.scale import NeighborSampler, make_scale_dataset, sample_in_edges


@pytest.fixture(scope="module")
def graph():
    return make_scale_dataset(1000, avg_degree=6.0, seed=2).graph


class TestSampleInEdges:
    def test_fanout_caps_high_degree_nodes(self, graph):
        rng = np.random.default_rng(0)
        nodes = np.arange(graph.num_nodes)
        src, dst = sample_in_edges(graph, nodes, 4, rng)
        deg = graph.in_degrees()
        sampled = np.bincount(dst, minlength=graph.num_nodes)
        np.testing.assert_array_equal(sampled, np.minimum(deg, 4))

    def test_low_degree_nodes_keep_every_edge(self, graph):
        rng = np.random.default_rng(0)
        deg = graph.in_degrees()
        small = np.flatnonzero(deg <= 3)[:50]
        src, dst = sample_in_edges(graph, small, 3, rng)
        for node in small:
            np.testing.assert_array_equal(
                np.sort(src[dst == node]), np.sort(graph.in_neighbors(node))
            )

    def test_sampled_edges_exist_in_graph(self, graph):
        rng = np.random.default_rng(1)
        src, dst = sample_in_edges(graph, np.arange(200), 5, rng)
        for s, d in zip(src[:100], dst[:100]):
            assert s in graph.in_neighbors(d)

    def test_deterministic(self, graph):
        a = sample_in_edges(graph, np.arange(300), 5, np.random.default_rng(7))
        b = sample_in_edges(graph, np.arange(300), 5, np.random.default_rng(7))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_zero_fanout(self, graph):
        src, dst = sample_in_edges(graph, np.arange(50), 0,
                                   np.random.default_rng(0))
        assert len(src) == 0 and len(dst) == 0

    def test_negative_fanout_raises(self, graph):
        with pytest.raises(ValueError):
            sample_in_edges(graph, np.arange(5), -1, np.random.default_rng(0))


class TestNeighborSampler:
    def test_merged_subgraph_seeds_first(self, graph):
        seeds = np.array([5, 900, 17])
        sub = NeighborSampler(graph, (4, 4), rng=0).sample(seeds)
        np.testing.assert_array_equal(sub.nodes[: sub.n_seeds], seeds)
        assert len(np.unique(sub.nodes)) == sub.num_nodes  # no duplicates
        # Local endpoints must be valid positions.
        assert sub.src.max() < sub.num_nodes
        assert sub.dst.max() < sub.num_nodes

    def test_merged_subgraph_edges_are_real(self, graph):
        sub = NeighborSampler(graph, (3, 3), rng=0).sample(np.arange(20))
        src_g, dst_g = sub.nodes[sub.src], sub.nodes[sub.dst]
        for s, d in zip(src_g[:100], dst_g[:100]):
            assert s in graph.in_neighbors(d)
        # Deduplicated: with-replacement draws never double an edge.
        keys = src_g * graph.num_nodes + dst_g
        assert len(np.unique(keys)) == len(keys)

    def test_deterministic_stream(self, graph):
        a = NeighborSampler(graph, (4, 4), rng=3).sample(np.arange(30))
        b = NeighborSampler(graph, (4, 4), rng=3).sample(np.arange(30))
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_blocks_conventions(self, graph):
        seeds = np.array([1, 2, 3])
        blocks = NeighborSampler(graph, (4, 6), rng=0).sample_blocks(seeds)
        assert len(blocks) == 2
        # Last block's destinations are the seeds (DGL convention); every
        # earlier block's destinations are the next block's sources.
        np.testing.assert_array_equal(blocks[-1].dst_nodes, seeds)
        first, last = blocks[0], blocks[-1]
        assert set(last.src_nodes) <= set(first.src_nodes[: first.num_dst])
        for block in blocks:
            assert block.dst.max() < block.num_dst
            assert block.src.max() < block.num_src

    def test_empty_fanouts_raise(self, graph):
        with pytest.raises(ValueError):
            NeighborSampler(graph, ())

    def test_sampling_charged_under_sampling_phase(self, graph):
        device = Device()
        with use_device(device):
            NeighborSampler(graph, (4, 4), rng=0).sample(np.arange(50))
        phases = device.clock.phase_elapsed
        assert phases.get("sampling", 0.0) > 0.0
