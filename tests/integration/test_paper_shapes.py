"""Integration: the paper's headline shape results on reduced workloads.

Each test asserts one of DESIGN.md section 5's expected shapes, on scaled
down datasets so the suite stays fast.  The benches repeat these at larger
scale and print the full tables.
"""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.device import Device, use_device
from repro.models import graph_config
from repro.nn import cross_entropy
from repro.optim import Adam
from repro.train import GraphClassificationTrainer


@pytest.fixture(scope="module")
def ds():
    return enzymes(seed=0, num_graphs=96)


def profile(framework, model, ds, batch_size=32):
    trainer = GraphClassificationTrainer(framework, model, ds, batch_size=batch_size)
    return trainer.measure_epoch(n_epochs=1)


@pytest.fixture(scope="module")
def grid(ds):
    out = {}
    for fw in ("pygx", "dglx"):
        for model in ("gcn", "gat", "gatedgcn"):
            out[(fw, model)] = profile(fw, model, ds)
    return out


class TestFrameworkGap:
    def test_pygx_faster_for_every_model(self, grid):
        for model in ("gcn", "gat", "gatedgcn"):
            assert (
                grid[("pygx", model)].mean_epoch_time
                < grid[("dglx", model)].mean_epoch_time
            ), model

    def test_gatedgcn_dgl_is_worst_case(self, grid):
        dgl_times = {m: grid[("dglx", m)].mean_epoch_time for m in ("gcn", "gat", "gatedgcn")}
        assert dgl_times["gatedgcn"] == max(dgl_times.values())

    def test_gatedgcn_dgl_about_twice_pyg(self, grid):
        ratio = (
            grid[("dglx", "gatedgcn")].mean_epoch_time
            / grid[("pygx", "gatedgcn")].mean_epoch_time
        )
        assert 1.5 < ratio < 3.5

    def test_dgl_loading_slower(self, grid):
        for model in ("gcn", "gat"):
            pyg = grid[("pygx", model)].mean_phase_times()["data_loading"]
            dgl = grid[("dglx", model)].mean_phase_times()["data_loading"]
            assert dgl > 1.5 * pyg

    def test_loading_is_major_share(self, grid):
        """Data loading dominates graph-level training (paper Section IV-C).

        At this reduced scale (96 graphs, batch 32) compute carries more
        fixed overhead per epoch than at paper scale, so the threshold is
        conservative; the Fig. 1 bench asserts dominance at full scale.
        """
        for (framework, model), result in grid.items():
            share = result.mean_phase_times()["data_loading"] / result.mean_epoch_time
            # GatedGCN is the most compute-heavy model, so its loading
            # share is smallest at this scale.
            floor = 0.25 if framework == "dglx" and model != "gatedgcn" else 0.10
            assert share > floor, (framework, model)

    def test_anisotropic_slower_than_gcn(self, grid):
        for fw in ("pygx", "dglx"):
            assert grid[(fw, "gat")].mean_epoch_time > grid[(fw, "gcn")].mean_epoch_time


class TestMemoryShapes:
    def test_gatedgcn_memory_biggest_in_dgl(self, grid):
        peaks = {m: grid[("dglx", m)].peak_memory for m in ("gcn", "gat", "gatedgcn")}
        assert peaks["gatedgcn"] == max(peaks.values())

    def test_gatedgcn_dgl_much_more_memory_than_pyg(self, grid):
        assert grid[("dglx", "gatedgcn")].peak_memory > 1.3 * grid[("pygx", "gatedgcn")].peak_memory

    def test_anisotropic_needs_more_memory(self, grid):
        for fw in ("pygx", "dglx"):
            assert grid[(fw, "gat")].peak_memory > grid[(fw, "gcn")].peak_memory


class TestUtilizationShapes:
    def test_utilization_low_everywhere(self, grid):
        for key, result in grid.items():
            assert result.gpu_utilization < 0.40, key

    def test_dgl_utilization_below_pyg(self, grid):
        for model in ("gcn", "gat", "gatedgcn"):
            assert (
                grid[("dglx", model)].gpu_utilization
                < grid[("pygx", model)].gpu_utilization
            )


class TestBatchSizeScaling:
    def test_enzymes_compute_drops_with_batch_size(self, ds):
        """Fig. 1: on small graphs, bigger batches nearly halve fwd+bwd."""
        small = profile("pygx", "gcn", ds, batch_size=16)
        large = profile("pygx", "gcn", ds, batch_size=64)
        def fwd_bwd(r):
            p = r.mean_phase_times()
            return p["forward"] + p["backward"]
        assert fwd_bwd(large) < 0.75 * fwd_bwd(small)


class TestAccuracyParity:
    def test_frameworks_reach_similar_accuracy(self, ds):
        """Same architecture + protocol => statistically similar accuracy."""
        from repro.datasets import kfold_splits

        splits = kfold_splits(ds.labels, 6, np.random.default_rng(0))
        accs = {}
        for fw in ("pygx", "dglx"):
            trainer = GraphClassificationTrainer(fw, "gcn", ds, batch_size=32, max_epochs=25)
            accs[fw] = trainer.run_fold(*splits[0], seed=0).test_acc
        assert abs(accs["pygx"] - accs["dglx"]) < 0.25

    def test_training_reduces_loss_in_both_frameworks(self, ds):
        for fw in ("pygx", "dglx"):
            trainer = GraphClassificationTrainer(fw, "gin", ds, batch_size=32, max_epochs=8)
            from repro.datasets import kfold_splits

            splits = kfold_splits(ds.labels, 6, np.random.default_rng(0))
            result = trainer.run_fold(*splits[0], seed=0)
            assert result.epochs[-1].train_loss < result.epochs[0].train_loss
