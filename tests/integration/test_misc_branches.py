"""Smaller behaviours across modules that the focused suites skip."""

import numpy as np
import pytest

from repro.device import Device, use_device
from repro.nn import Module, Parameter
from repro.optim import SGD
from repro.tensor import Tensor, ops


class TestDeviceTransfer:
    def test_transfer_charges_latency_plus_bandwidth(self):
        dev = Device()
        dev.transfer(dev.spec.pcie_bandwidth)  # exactly one second of payload
        assert dev.clock.elapsed == pytest.approx(1.0 + dev.spec.pcie_latency)

    def test_transfer_is_host_time(self):
        dev = Device()
        dev.transfer(1e6)
        assert dev.clock.gpu_busy == 0.0


class TestSGDWeightDecay:
    def test_decay_applied(self):
        p = Parameter(np.array([2.0], np.float32))
        opt = SGD([p], lr=0.5, weight_decay=1.0)
        p.grad = np.zeros(1, np.float32)
        opt.step()
        # effective grad = 0 + wd * w = 2 -> step = -1
        assert p.data[0] == pytest.approx(1.0)


class TestModuleBuffers:
    def test_register_buffer_roundtrip(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.register_buffer("stats", np.arange(3, dtype=np.float32))

        m = M()
        assert dict(m.named_buffers())["stats"].sum() == 3.0
        state = m.state_dict()
        state["stats"] = np.ones(3, np.float32)
        m.load_state_dict(state)
        assert m.stats.sum() == 3.0


class TestTensorViews:
    def test_reshape_accepts_tuple(self):
        t = Tensor(np.arange(6, dtype=np.float32))
        assert t.reshape((2, 3)).shape == (2, 3)
        assert t.reshape(3, 2).shape == (3, 2)

    def test_stack_backward_shapes(self):
        a = Tensor(np.ones(3, np.float32), requires_grad=True)
        b = Tensor(np.ones(3, np.float32), requires_grad=True)
        ops.stack([a, b], axis=0).sum().backward()
        assert a.grad.shape == (3,)
        assert b.grad.shape == (3,)


class TestAdamUnderNoGrad:
    def test_optimizer_state_not_graphed(self):
        from repro.optim import Adam

        dev = Device()
        with use_device(dev):
            p = Parameter(np.ones(4, np.float32))
            opt = Adam([p], lr=0.1)
            p.grad = np.ones(4, np.float32)
            opt.step()
            # Adam state lives on the device
            assert dev.memory.current > 0


class TestCSRDegrees:
    def test_out_degrees(self):
        from repro.tensor import CSRGraph

        g = CSRGraph.from_edge_index(np.array([0, 0, 1]), np.array([1, 2, 2]), 3, 3)
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 0])


class TestMLPReadoutVariants:
    def test_custom_halvings(self):
        from repro.models import MLPReadout

        head = MLPReadout(64, 4, n_halvings=3, rng=np.random.default_rng(0))
        widths = [layer.out_features for layer in head.hidden_layers]
        assert widths == [32, 16, 8]


class TestMNISTKnnParameter:
    def test_knn_controls_density(self):
        from repro.datasets import mnist_superpixels

        sparse = mnist_superpixels(20, seed=0, knn=4)
        dense = mnist_superpixels(20, seed=0, knn=12)
        sparse_edges = np.mean([g.num_edges for g in sparse.graphs])
        dense_edges = np.mean([g.num_edges for g in dense.graphs])
        assert dense_edges > 1.5 * sparse_edges
