"""Integration: node-classification shape results (Table IV) at small scale."""

import numpy as np
import pytest

from repro.datasets import cora
from repro.train import NodeClassificationTrainer


@pytest.fixture(scope="module")
def ds():
    return cora(seed=0)


@pytest.fixture(scope="module")
def runs(ds):
    out = {}
    for fw in ("pygx", "dglx"):
        for model in ("gcn", "gat", "gatedgcn"):
            trainer = NodeClassificationTrainer(fw, model, ds, max_epochs=12)
            out[(fw, model)] = trainer.run(seed=0)
    return out


class TestNodeTimings:
    def test_pygx_faster_per_epoch(self, runs):
        for model in ("gcn", "gat", "gatedgcn"):
            assert (
                runs[("pygx", model)].mean_full_epoch_time
                < runs[("dglx", model)].mean_full_epoch_time
            ), model

    def test_gatedgcn_gap_largest(self, runs):
        ratios = {
            m: runs[("dglx", m)].mean_full_epoch_time
            / runs[("pygx", m)].mean_full_epoch_time
            for m in ("gcn", "gat", "gatedgcn")
        }
        assert ratios["gatedgcn"] == max(ratios.values())
        assert ratios["gatedgcn"] > 1.4

    def test_anisotropic_slower_than_gcn_within_framework(self, runs):
        for fw in ("pygx", "dglx"):
            assert (
                runs[(fw, "gat")].mean_full_epoch_time
                > runs[(fw, "gcn")].mean_full_epoch_time
            )

    def test_epoch_magnitude_matches_paper(self, runs):
        """Paper Table IV: Cora epochs are single-digit milliseconds."""
        for key, run in runs.items():
            assert 0.5e-3 < run.mean_full_epoch_time < 40e-3, key


class TestNodeAccuracy:
    def test_frameworks_agree_within_noise(self, ds):
        accs = {}
        for fw in ("pygx", "dglx"):
            trainer = NodeClassificationTrainer(fw, "gcn", ds, max_epochs=40)
            accs[fw] = trainer.run(seed=0).test_acc
        assert abs(accs["pygx"] - accs["dglx"]) < 0.10

    def test_gcn_lands_in_paper_band(self, ds):
        trainer = NodeClassificationTrainer("pygx", "gcn", ds, max_epochs=60)
        acc = trainer.run(seed=0).test_acc
        assert 0.70 < acc < 0.92  # paper: 80.8 +- 1.3
