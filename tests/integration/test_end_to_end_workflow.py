"""End-to-end user workflows: the README's promises, executed."""

import numpy as np
import pytest

from repro.datasets import enzymes, load_dataset
from repro.device import Device, use_device
from repro.models import graph_config
from repro.train import GraphClassificationTrainer, save_checkpoint, load_checkpoint


class TestQuickstartWorkflow:
    """The README quickstart: measure an epoch, read the observables."""

    def test_measure_epoch_observables(self):
        ds = enzymes(seed=0, num_graphs=48)
        trainer = GraphClassificationTrainer(
            "dglx", "gatedgcn", ds, batch_size=16, device=Device()
        )
        result = trainer.measure_epoch(n_epochs=2)
        phases = result.mean_phase_times()
        assert result.mean_epoch_time > 0
        assert set(phases) >= {"data_loading", "forward", "backward", "update"}
        assert result.peak_memory > 0
        assert 0.0 < result.gpu_utilization < 1.0


class TestTrainEvaluateCheckpointReload:
    """Train, checkpoint, reload into a fresh process-like device, evaluate."""

    def test_full_cycle(self, tmp_path):
        ds = enzymes(seed=0, num_graphs=36)
        idx = np.arange(36)
        trainer = GraphClassificationTrainer("pygx", "gin", ds, batch_size=12, max_epochs=4)
        run = trainer.run_fold(idx[:24], idx[24:30], idx[30:], seed=0)
        assert run.n_epochs == 4

        # train a model directly and checkpoint it
        from repro.nn import cross_entropy
        from repro.optim import Adam
        from repro.pygx import Batch, Data, build_model

        cfg = graph_config("gin", in_dim=ds.num_features, n_classes=ds.num_classes)
        with use_device(Device()):
            net = build_model(cfg, np.random.default_rng(0))
            batch = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs[:24]])
            opt = Adam(net.parameters(), lr=cfg.lr)
            for _ in range(3):
                loss = cross_entropy(net(batch), batch.y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            save_checkpoint(net, tmp_path / "gin.npz")
            net.eval()
            expected = net(batch).data

        with use_device(Device()):
            restored = build_model(cfg, np.random.default_rng(9))
            load_checkpoint(restored, tmp_path / "gin.npz")
            restored.eval()
            batch2 = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs[:24]])
            np.testing.assert_allclose(restored(batch2).data, expected, atol=1e-6)


class TestProfilerWorkflow:
    """Profile a step, analyse the trace, export the timeline."""

    def test_profile_analyse_export(self, tmp_path):
        import json

        from repro.device import kernel_stats, to_chrome_trace
        from repro.nn import cross_entropy
        from repro.optim import Adam
        from repro.pygx import Batch, Data, build_model

        ds = load_dataset("enzymes", num_graphs=24)
        cfg = graph_config("gat", in_dim=ds.num_features, n_classes=ds.num_classes)
        device = Device()
        with use_device(device):
            net = build_model(cfg, np.random.default_rng(0))
            batch = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
            opt = Adam(net.parameters(), lr=cfg.lr)
            device.profiler.enabled = True
            loss = cross_entropy(net(batch), batch.y)
            opt.zero_grad()
            loss.backward()
            opt.step()

        stats = kernel_stats(device.profiler.records)
        assert len(stats) > 5
        assert any("gather" in s.name for s in stats)
        trace = json.loads(to_chrome_trace(device.profiler.records))
        kernels = [e for e in trace["traceEvents"] if e.get("ph") != "C"]
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert len(kernels) == len(device.profiler.records)
        # one "Device memory" counter sample rides along with every kernel
        assert len(counters) == len(device.profiler.records)
