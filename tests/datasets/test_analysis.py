"""Dataset analysis utilities."""

import numpy as np
import pytest

from repro.datasets import (
    cora,
    degree_histogram,
    edge_homophily,
    enzymes,
    feature_class_separation,
    label_entropy,
    profile_graph,
)
from repro.graph import GraphSample


@pytest.fixture(scope="module")
def cora_ds():
    return cora(seed=0)


class TestProfileGraph:
    def test_simple_ring(self):
        ring = np.arange(4)
        g = GraphSample(np.stack([ring, np.roll(ring, -1)]), np.zeros((4, 1), np.float32), 0)
        p = profile_graph(g)
        assert p.num_nodes == 4
        assert p.num_edges_directed == 4
        assert p.mean_degree == pytest.approx(2.0)
        assert p.isolated_nodes == 0

    def test_isolated_nodes_counted(self):
        g = GraphSample(np.array([[0], [1]]), np.zeros((3, 1), np.float32), 0)
        assert profile_graph(g).isolated_nodes == 1

    def test_density_complete_graph(self):
        src, dst = np.meshgrid(np.arange(3), np.arange(3))
        mask = src.ravel() != dst.ravel()
        g = GraphSample(
            np.stack([src.ravel()[mask], dst.ravel()[mask]]),
            np.zeros((3, 1), np.float32),
            0,
        )
        assert profile_graph(g).density == pytest.approx(1.0)


class TestHomophily:
    def test_synthetic_cora_is_homophilous(self, cora_ds):
        assert edge_homophily(cora_ds) > 0.5

    def test_perfectly_homophilous_graph(self):
        from repro.datasets.base import NodeClassificationDataset

        g = GraphSample(
            np.array([[0, 1], [1, 0]]),
            np.zeros((2, 1), np.float32),
            np.array([1, 1]),
        )
        ds = NodeClassificationDataset("t", g, 2, np.array([0]), np.array([1]), np.array([1]))
        assert edge_homophily(ds) == 1.0


class TestHistogramsAndEntropy:
    def test_degree_histogram_sums_to_nodes(self, cora_ds):
        hist = degree_histogram(cora_ds.graph)
        assert hist.sum() == cora_ds.graph.num_nodes

    def test_degree_histogram_overflow_bin(self):
        star_src = np.zeros(30, np.int64)
        star_dst = np.arange(1, 31)
        g = GraphSample(
            np.stack([star_dst, star_src]), np.zeros((31, 1), np.float32), 0
        )  # node 0 has in-degree 30
        hist = degree_histogram(g, max_bins=5)
        assert hist[4] >= 1  # overflow captured

    def test_label_entropy_balanced_classes(self):
        ds = enzymes(seed=0, num_graphs=60)
        assert label_entropy(ds) == pytest.approx(np.log2(6), abs=0.01)

    def test_label_entropy_node_dataset(self, cora_ds):
        assert 2.0 < label_entropy(cora_ds) <= np.log2(7) + 1e-6


class TestSeparation:
    def test_separation_positive_for_enzymes(self):
        ds = enzymes(seed=0, num_graphs=120)
        assert feature_class_separation(ds) > 0.05

    def test_separation_near_zero_for_shuffled_labels(self):
        ds = enzymes(seed=0, num_graphs=120)
        rng = np.random.default_rng(0)
        shuffled = [
            GraphSample(g.edge_index, g.x, int(rng.integers(0, 6))) for g in ds.graphs
        ]
        from repro.datasets.base import GraphClassificationDataset

        shuffled_ds = GraphClassificationDataset("x", shuffled, 6)
        assert feature_class_separation(shuffled_ds) < feature_class_separation(ds)
