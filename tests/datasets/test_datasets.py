"""Synthetic datasets: Table I statistics, splits, registry."""

import numpy as np
import pytest

from repro.datasets import (
    DD_SPEC,
    ENZYMES_SPEC,
    GraphClassificationDataset,
    NodeClassificationDataset,
    clear_cache,
    compute_statistics,
    cora,
    enzymes,
    kfold_splits,
    load_dataset,
    mnist_superpixels,
    planetoid_split,
    stratified_folds,
)
from repro.graph import GraphSample


@pytest.fixture(scope="module")
def cora_ds():
    return cora(seed=0)


@pytest.fixture(scope="module")
def enzymes_ds():
    return enzymes(seed=0)


class TestCora:
    def test_table1_statistics(self, cora_ds):
        stats = compute_statistics(cora_ds)
        assert stats.num_graphs == 1
        assert stats.avg_nodes == 2708
        assert stats.num_features == 1433
        assert stats.num_classes == 7
        assert abs(stats.avg_edges - 5429) < 120

    def test_split_sizes(self, cora_ds):
        assert len(cora_ds.train_idx) == 140
        assert len(cora_ds.val_idx) == 500
        assert len(cora_ds.test_idx) == 1000

    def test_splits_disjoint(self, cora_ds):
        a = set(cora_ds.train_idx)
        b = set(cora_ds.val_idx)
        c = set(cora_ds.test_idx)
        assert not (a & b) and not (a & c) and not (b & c)

    def test_train_split_class_balanced(self, cora_ds):
        labels = np.asarray(cora_ds.graph.y)[cora_ds.train_idx]
        counts = np.bincount(labels, minlength=7)
        assert np.all(counts == 20)

    def test_homophily_present(self, cora_ds):
        ei = cora_ds.graph.edge_index
        labels = np.asarray(cora_ds.graph.y)
        same = (labels[ei[0]] == labels[ei[1]]).mean()
        assert same > 0.5  # citation graphs are homophilous

    def test_features_binary(self, cora_ds):
        x = cora_ds.graph.x
        assert set(np.unique(x)).issubset({0.0, 1.0})

    def test_deterministic_per_seed(self):
        a, b = cora(seed=7), cora(seed=7)
        np.testing.assert_array_equal(a.graph.x, b.graph.x)
        np.testing.assert_array_equal(a.graph.edge_index, b.graph.edge_index)

    def test_different_seeds_differ(self):
        a, b = cora(seed=0), cora(seed=1)
        assert not np.array_equal(a.graph.edge_index, b.graph.edge_index)


class TestTU:
    def test_enzymes_table1(self, enzymes_ds):
        stats = compute_statistics(enzymes_ds)
        assert stats.num_graphs == 600
        assert abs(stats.avg_nodes - 32.63) < 4
        assert abs(stats.avg_edges - 62.14) < 10
        assert stats.num_features == 18
        assert stats.num_classes == 6

    def test_enzymes_balanced_classes(self, enzymes_ds):
        counts = np.bincount(enzymes_ds.labels)
        assert np.all(counts == 100)

    def test_dd_scaled_subset(self):
        ds = load_dataset("dd", num_graphs=50)
        assert len(ds) == 50
        assert ds.num_features == DD_SPEC.num_features
        assert ds.num_classes == 2

    def test_node_counts_in_spec_range(self, enzymes_ds):
        counts = [g.num_nodes for g in enzymes_ds.graphs]
        assert min(counts) >= ENZYMES_SPEC.min_nodes
        assert max(counts) <= ENZYMES_SPEC.max_nodes

    def test_graphs_are_undirected(self, enzymes_ds):
        g = enzymes_ds.graphs[0]
        pairs = set(map(tuple, g.edge_index.T))
        assert all((b, a) in pairs for a, b in pairs)

    def test_labels_are_ints(self, enzymes_ds):
        assert all(isinstance(g.y, int) for g in enzymes_ds.graphs)


class TestMNIST:
    @pytest.fixture(scope="class")
    def mnist(self):
        return mnist_superpixels(100, seed=0)

    def test_shape_statistics(self, mnist):
        stats = compute_statistics(mnist)
        assert 55 < stats.avg_nodes < 85  # paper: 70.57
        assert stats.num_features == 1
        assert stats.num_classes == 10

    def test_positions_present_and_normalised(self, mnist):
        g = mnist.graphs[0]
        assert g.pos is not None
        assert g.pos.min() >= 0.0 and g.pos.max() <= 1.0

    def test_intensity_in_unit_range(self, mnist):
        for g in mnist.graphs[:10]:
            assert g.x.min() >= 0.0 and g.x.max() <= 1.0

    def test_balanced_digits(self, mnist):
        assert np.all(np.bincount(mnist.labels) == 10)

    def test_reported_full_size(self, mnist):
        stats = compute_statistics(mnist, reported_num_graphs=70000)
        assert stats.num_graphs == 70000

    def test_minimum_size_validated(self):
        with pytest.raises(ValueError):
            mnist_superpixels(5)


class TestSplits:
    def test_stratified_folds_cover_everything(self, rng):
        labels = np.repeat(np.arange(3), 30)
        folds = stratified_folds(labels, 10, rng)
        union = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(union, np.arange(90))

    def test_stratified_folds_preserve_distribution(self, rng):
        labels = np.repeat(np.arange(3), 40)
        for fold in stratified_folds(labels, 10, rng):
            counts = np.bincount(labels[fold], minlength=3)
            assert counts.max() - counts.min() <= 2

    def test_kfold_ratio(self, rng):
        labels = np.repeat(np.arange(2), 50)
        train, val, test = kfold_splits(labels, 10, rng)[0]
        assert len(train) == 80 and len(val) == 10 and len(test) == 10

    def test_kfold_disjoint(self, rng):
        labels = np.repeat(np.arange(2), 50)
        for train, val, test in kfold_splits(labels, 10, rng):
            assert not set(train) & set(val)
            assert not set(train) & set(test)
            assert not set(val) & set(test)

    def test_kfold_test_folds_partition(self, rng):
        labels = np.repeat(np.arange(2), 50)
        tests = np.concatenate([t for _, _, t in kfold_splits(labels, 10, rng)])
        np.testing.assert_array_equal(np.sort(tests), np.arange(100))

    def test_planetoid_split_insufficient_class_raises(self, rng):
        with pytest.raises(ValueError):
            planetoid_split(np.array([0, 0, 1]), 5, 1, 1, rng)

    def test_folds_require_k_at_least_2(self, rng):
        with pytest.raises(ValueError):
            stratified_folds(np.zeros(10, int), 1, rng)


class TestRegistry:
    def test_loads_every_name(self):
        for name in ("cora", "enzymes"):
            ds = load_dataset(name)
            assert isinstance(
                ds, (NodeClassificationDataset, GraphClassificationDataset)
            )

    def test_cache_returns_same_object(self):
        clear_cache()
        a = load_dataset("enzymes", num_graphs=30)
        b = load_dataset("enzymes", num_graphs=30)
        assert a is b

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_case_insensitive(self):
        assert load_dataset("ENZYMES", num_graphs=30).name == "ENZYMES"


class TestContainers:
    def test_node_dataset_validates_labels(self):
        g = GraphSample(np.zeros((2, 0), np.int64), np.zeros((3, 2), np.float32), 0)
        with pytest.raises(ValueError):
            NodeClassificationDataset("x", g, 2, np.array([0]), np.array([1]), np.array([2]))

    def test_graph_dataset_rejects_empty(self):
        with pytest.raises(ValueError):
            GraphClassificationDataset("x", [], 2)

    def test_graph_dataset_subset(self, enzymes_ds):
        subset = enzymes_ds.subset(np.array([0, 5, 10]))
        assert len(subset) == 3
        assert subset[1] is enzymes_ds.graphs[5]
