"""Dataset save/load round-trips."""

import numpy as np
import pytest

from repro.datasets import (
    cora,
    enzymes,
    load_saved_dataset,
    mnist_superpixels,
    save_dataset,
)


class TestNodeDatasetIO:
    def test_roundtrip(self, tmp_path):
        ds = cora(seed=0)
        path = tmp_path / "cora.npz"
        save_dataset(ds, path)
        restored = load_saved_dataset(path)
        assert restored.name == "Cora"
        assert restored.num_classes == 7
        np.testing.assert_array_equal(restored.graph.x, ds.graph.x)
        np.testing.assert_array_equal(restored.graph.edge_index, ds.graph.edge_index)
        np.testing.assert_array_equal(restored.train_idx, ds.train_idx)


class TestGraphDatasetIO:
    def test_roundtrip(self, tmp_path):
        ds = enzymes(seed=0, num_graphs=18)
        path = tmp_path / "enz.npz"
        save_dataset(ds, path)
        restored = load_saved_dataset(path)
        assert len(restored) == 18
        assert restored.num_classes == 6
        np.testing.assert_array_equal(restored.labels, ds.labels)
        np.testing.assert_array_equal(restored.graphs[3].x, ds.graphs[3].x)

    def test_positions_preserved(self, tmp_path):
        ds = mnist_superpixels(20, seed=0)
        path = tmp_path / "mnist.npz"
        save_dataset(ds, path)
        restored = load_saved_dataset(path)
        np.testing.assert_array_equal(restored.graphs[0].pos, ds.graphs[0].pos)

    def test_restored_trains_identically(self, tmp_path):
        from repro.pygx import Batch, Data, build_model
        from repro.models import graph_config

        ds = enzymes(seed=0, num_graphs=12)
        path = tmp_path / "d.npz"
        save_dataset(ds, path)
        restored = load_saved_dataset(path)
        cfg = graph_config("gcn", in_dim=ds.num_features, n_classes=ds.num_classes)
        net = build_model(cfg, np.random.default_rng(0))
        net.eval()
        a = net(Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])).data
        b = net(Batch.from_data_list([Data.from_sample(g) for g in restored.graphs])).data
        np.testing.assert_array_equal(a, b)


class TestGradcheckUtility:
    def test_passes_for_correct_op(self):
        from repro.tensor import gradcheck, ops

        rng = np.random.default_rng(0)
        assert gradcheck(lambda a, b: ops.mul(a, b), [rng.normal(size=4), rng.normal(size=4)])

    def test_fails_for_wrong_gradient(self):
        from repro.tensor import GradcheckError, gradcheck
        from repro.tensor.tensor import Tensor, make_op

        def bad_op(a):
            out = a.data * 2.0
            return make_op("bad", out, (a,), lambda g: (g * 3.0,), 1.0, 1.0)

        with pytest.raises(GradcheckError):
            gradcheck(bad_op, [np.ones(3, np.float32)])

    def test_quiet_variant(self):
        from repro.tensor import gradcheck_quiet, ops

        ok, msg = gradcheck_quiet(lambda a: ops.relu(ops.mul(a, a)), [np.full(3, 2.0)])
        assert ok and msg == ""
