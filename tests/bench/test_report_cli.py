"""The command-line report tool (python -m repro.bench.report)."""

import json

import pytest

from repro.bench.report import EXPERIMENTS, main


class TestReportCLI:
    def test_table1_subset(self, capsys):
        assert main(["table1", "--datasets", "cora", "enzymes"]) == 0
        out = capsys.readouterr().out
        assert "Cora" in out and "ENZYMES" in out

    def test_table4_with_json_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "t4.json"
        csv_path = tmp_path / "t4.csv"
        code = main(
            [
                "table4",
                "--datasets",
                "cora",
                "--models",
                "gcn",
                "--frameworks",
                "pygx",
                "--epochs",
                "2",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data[0]["model"] == "gcn"
        assert csv_path.read_text().startswith("dataset,model,framework")
        assert "Table IV" in capsys.readouterr().out

    def test_table5_quick(self, capsys):
        code = main(
            [
                "table5",
                "--datasets",
                "enzymes",
                "--models",
                "gcn",
                "--frameworks",
                "pygx",
                "--epochs",
                "2",
                "--num-graphs",
                "24",
                "--folds",
                "1",
            ]
        )
        assert code == 0
        assert "Table V" in capsys.readouterr().out

    def test_fig1_breakdown_chart(self, capsys):
        code = main(
            [
                "fig1",
                "--models",
                "gcn",
                "--frameworks",
                "pygx",
                "--batch-sizes",
                "16",
                "--num-graphs",
                "24",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "data_loading" in out

    def test_fig3_table(self, capsys):
        code = main(
            ["fig3", "--models", "gcn", "--frameworks", "pygx", "--num-graphs", "32"]
        )
        assert code == 0
        assert "conv1" in capsys.readouterr().out

    def test_fig2_small(self, capsys):
        code = main(
            [
                "fig2",
                "--models",
                "gcn",
                "--frameworks",
                "dglx",
                "--batch-sizes",
                "8",
                "--num-graphs",
                "16",
            ]
        )
        assert code == 0
        assert "dd" in capsys.readouterr().out.lower()

    def test_fig6_small(self, capsys):
        code = main(["fig6", "--models", "gcn", "--frameworks", "pygx", "--num-graphs", "40",
                     "--batch-sizes", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "8gpu" in out

    @pytest.mark.parametrize("experiment,token", [("fig4", "memory"), ("fig5", "utilisation")])
    def test_resource_figures(self, capsys, experiment, token):
        code = main(
            [experiment, "--models", "gcn", "--frameworks", "pygx",
             "--batch-sizes", "8", "--num-graphs", "16"]
        )
        assert code == 0
        assert token in capsys.readouterr().out

    def test_compile_experiment_writes_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        json_path = tmp_path / "BENCH_compile.json"
        code = main(
            [
                "compile",
                "--models",
                "gcn",
                "--frameworks",
                "pygx",
                "--num-graphs",
                "48",
                "--batch-size",
                "32",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.compile" in out
        assert "exact" in out
        data = json.loads(json_path.read_text())
        cell = data["cells"][0]
        assert cell["parity"] is True
        assert cell["eager_launches_per_step"] > cell["compiled_launches_per_step"]
        assert cell["launch_reduction"] > 0

    def test_compile_default_output_name(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["compile", "--models", "gcn", "--frameworks", "dglx",
             "--num-graphs", "32", "--batch-size", "16"]
        )
        assert code == 0
        assert (tmp_path / "BENCH_compile.json").exists()

    @pytest.mark.parametrize("extra", [[], ["--compiled"]])
    def test_kernels_top_table(self, capsys, extra):
        code = main(
            ["kernels", "--models", "gcn", "--frameworks", "pygx",
             "--num-graphs", "32", "--batch-size", "16", "--top", "5"] + extra
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top kernels" in out
        assert "launches" in out
        if extra:
            assert "fused[" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_experiment_registry(self):
        assert set(EXPERIMENTS) >= {"table1", "table4", "table5", "fig1", "fig2",
                                    "fig3", "fig4", "fig5", "fig6", "serve",
                                    "compile", "kernels"}
