"""Bench helpers: table rendering, runners on tiny inputs."""

import numpy as np
import pytest

from repro.bench import (
    breakdown_row,
    epoch_profile,
    format_seconds,
    format_table,
    layerwise_profile,
)


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")

    def test_format_table_title(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_table_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_format_seconds_scales(self):
        assert format_seconds(0.0045) == "0.0045s"
        assert format_seconds(12.3) == "12.30s"
        assert format_seconds(7200.0) == "2.00hr"


class TestRunners:
    def test_epoch_profile_returns_run_result(self):
        result = epoch_profile("pygx", "gcn", "enzymes", batch_size=16, num_graphs=32, n_epochs=1)
        assert result.mean_epoch_time > 0

    def test_breakdown_row_has_all_phases(self):
        result = epoch_profile("pygx", "gcn", "enzymes", batch_size=16, num_graphs=32, n_epochs=1)
        row = breakdown_row(result)
        assert set(row) == {"data_loading", "forward", "backward", "update", "other"}
        assert all(v >= 0 for v in row.values())
        assert sum(row.values()) == pytest.approx(result.mean_epoch_time, rel=1e-6)

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_layerwise_profile_scopes(self, framework):
        scopes = layerwise_profile(framework, "gcn", "enzymes", batch_size=16, num_graphs=32)
        assert {"conv1", "conv2", "conv3", "conv4", "pooling", "classifier"} <= set(scopes)
        assert all(scopes[f"conv{i}"] > 0 for i in range(1, 5))

    def test_layerwise_rejects_unknown_framework(self):
        with pytest.raises(ValueError):
            layerwise_profile("tf", "gcn", "enzymes", batch_size=8, num_graphs=16)
