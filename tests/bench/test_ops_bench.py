"""repro.bench.ops: cell invariants, the BENCH_ops.json schema round-trip,
the CLI, and the regression gate firing on the committed regressed fixture."""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

from repro.bench.ops import (
    MODES,
    OPS,
    PACKS,
    SHAPES,
    main,
    ops_document,
    ops_grid,
    ops_report,
    run_cell,
)
from repro.bench.serialize import (
    OPS_CELL_SCHEMA,
    ops_from_json,
    ops_to_json,
    validate_ops_document,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
REGRESSED_OPS = os.path.join(
    REPO_ROOT, "tests", "fixtures", "bench_regression", "regressed", "BENCH_ops.json"
)

CORA = SHAPES["cora"]
ENZYMES = SHAPES["enzymes-b128"]


class TestRunCell:
    def test_cell_carries_every_schema_field(self):
        cell = run_cell("gemm", ENZYMES, "pygx")
        for field, types in OPS_CELL_SCHEMA.items():
            assert field in cell
            assert isinstance(cell[field], types), field

    def test_unfused_pyg_spmm_vs_fused_dgl_gspmm(self):
        # The Section IV-C contrast: the gather->scatter lowering costs
        # two launches where the fused GSpMM costs one, over the same
        # edge set and features.
        pyg = run_cell("gspmm", CORA, "pygx")
        dgl = run_cell("gspmm", CORA, "dglx")
        assert pyg["launches"] == 2
        assert dgl["launches"] == 1

    def test_compiled_elementwise_chain_fuses(self):
        eager = run_cell("elementwise", CORA, "pygx", "eager")
        compiled = run_cell("elementwise", CORA, "pygx", "compiled")
        assert eager["launches"] == 4
        assert compiled["launches"] == 1
        assert compiled["wall_time"] < eager["wall_time"]

    def test_gemm_compute_bound_at_cora_width(self):
        # 1433-wide features put the GEMM far right of the ridge point.
        cell = run_cell("gemm", CORA, "pygx")
        assert cell["bound"] == "compute"
        assert cell["intensity"] > 100

    def test_h2d_has_no_flops_and_no_compiled_mode(self):
        cell = run_cell("h2d", CORA, "pygx")
        assert cell["flops"] == 0.0
        assert cell["intensity"] == 0.0
        assert cell["bound"] in ("launch", "bandwidth")
        with pytest.raises(ValueError):
            run_cell("h2d", CORA, "pygx", "compiled")

    def test_unknown_inputs_raise(self):
        with pytest.raises(ValueError):
            run_cell("nope", CORA, "pygx")
        with pytest.raises(ValueError):
            run_cell("gemm", CORA, "torch")
        with pytest.raises(ValueError):
            run_cell("gemm", CORA, "pygx", "jit")

    def test_cells_are_deterministic(self):
        assert run_cell("gspmm", ENZYMES, "dglx") == run_cell(
            "gspmm", ENZYMES, "dglx"
        )


class TestGridAndSchema:
    def test_grid_covers_every_op_on_both_packs(self):
        cells = ops_grid(shapes=["enzymes-b128"])
        seen = {(c["op"], c["pack"]) for c in cells}
        assert seen == {(op, pack) for op in OPS for pack in PACKS}
        # fp32: h2d has no compiled mode, everything else appears in both;
        # fp16 rides along on the eager cells only.
        fp32 = (len(OPS) - 1) * len(PACKS) * len(MODES) + len(PACKS)
        fp16 = len(OPS) * len(PACKS)
        assert len(cells) == fp32 + fp16
        assert {c["precision"] for c in cells} == {"fp32", "fp16"}
        assert all(
            c["mode"] == "eager" for c in cells if c["precision"] == "fp16"
        )
        for cell in cells:
            assert cell["bound"] in ("launch", "bandwidth", "compute")

    def test_document_round_trips_through_serialize(self):
        doc = ops_document(ops_grid(shapes=["enzymes-b128"], ops=["gemm", "h2d"]))
        assert ops_from_json(ops_to_json(doc)) == doc
        assert doc["device"]["ridge_point"] > 0

    def test_validate_rejects_wrong_experiment(self):
        with pytest.raises(ValueError, match="not an ops document"):
            validate_ops_document({"experiment": "compile", "cells": []})

    def test_validate_rejects_missing_field_and_bad_bound(self):
        cell = run_cell("gemm", ENZYMES, "pygx")
        broken = dict(cell)
        del broken["intensity"]
        with pytest.raises(ValueError, match="missing field 'intensity'"):
            validate_ops_document({"experiment": "ops", "cells": [broken]})
        flipped = dict(cell, bound="memory")
        with pytest.raises(ValueError, match="bound='memory'"):
            validate_ops_document({"experiment": "ops", "cells": [flipped]})

    def test_report_renders_every_cell_and_summary(self):
        cells = ops_grid(shapes=["enzymes-b128"], ops=["gspmm"])
        text = ops_report(cells)
        assert "roofline attribution" in text
        assert "Bottleneck summary" in text
        assert text.count("gspmm") >= len(cells)


class TestCli:
    def test_cli_writes_valid_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_ops.json"
        rc = main(["--shapes", "enzymes-b128", "--ops", "gemm", "--out", str(out)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = ops_from_json(out.read_text())
        assert {c["shape"] for c in doc["cells"]} == {"enzymes-b128"}

    def test_cli_report_prints_table(self, capsys):
        rc = main(["--shapes", "enzymes-b128", "--ops", "h2d", "--report"])
        assert rc == 0
        assert "bound" in capsys.readouterr().out


def _load_gate_tool():
    path = os.path.join(REPO_ROOT, "tools", "check_bench_regression.py")
    spec = importlib.util.spec_from_file_location("check_bench_regression_ops", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRegressionGate:
    def test_gate_fires_on_regressed_fixture(self, capsys):
        # The committed fixture carries +20% wall clocks, one flipped
        # bound class, and a launch-count bump; the gate must reject it
        # with per-metric diffs.
        tool = _load_gate_tool()
        baseline = os.path.join(REPO_ROOT, "BENCH_ops.json")
        rc = tool.main(["--baseline", baseline, "--current", REGRESSED_OPS])
        assert rc == 1
        out = capsys.readouterr().out
        assert "wall_time: baseline=" in out
        assert "bound: baseline='bandwidth' -> current='launch'" in out
        assert "launches: baseline=" in out

    def test_gate_passes_baseline_against_itself_with_subset(self, capsys):
        # --subset lets a reduced CI grid gate against the full baseline:
        # a current document holding a strict subset of cells passes.
        tool = _load_gate_tool()
        baseline = os.path.join(REPO_ROOT, "BENCH_ops.json")
        doc = json.load(open(baseline))
        doc["cells"] = doc["cells"][: len(doc["cells"]) // 2]
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            subset_path = os.path.join(tmp, "BENCH_ops.json")
            with open(subset_path, "w") as fh:
                json.dump(doc, fh)
            args = ["--baseline", baseline, "--current", subset_path]
            assert tool.main(args + ["--subset"]) == 0
            assert tool.main(args) == 1  # without the flag: missing cells
        out = capsys.readouterr().out
        assert "cell missing from current run" in out
