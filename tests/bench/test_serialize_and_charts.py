"""Serialisation round-trips and ASCII chart rendering."""

import numpy as np
import pytest

from repro.bench.charts import horizontal_bars, series_table, stacked_bars
from repro.bench.serialize import (
    experiment_from_dict,
    experiment_to_dict,
    experiments_from_json,
    experiments_to_csv,
    experiments_to_json,
    serving_from_dict,
    serving_to_dict,
    servings_from_json,
    servings_to_json,
)
from repro.serve import ServingResult
from repro.train.results import EpochRecord, ExperimentResult, RunResult


def make_experiment():
    run = RunResult(
        test_acc=0.8,
        peak_memory=123456,
        gpu_utilization=0.12,
        total_time=5.0,
        epochs=[
            EpochRecord(
                epoch=0,
                train_time=0.1,
                eval_time=0.02,
                phase_times={"forward": 0.05, "backward": 0.05},
                train_loss=1.5,
                val_loss=1.4,
                val_acc=0.6,
            )
        ],
    )
    return ExperimentResult(
        framework="pygx",
        model="gcn",
        dataset="ENZYMES",
        acc_mean=0.8,
        acc_std=0.02,
        epoch_time=0.1,
        total_time=5.0,
        runs=[run],
    )


class TestSerialize:
    def test_dict_roundtrip(self):
        exp = make_experiment()
        restored = experiment_from_dict(experiment_to_dict(exp))
        assert restored.acc_mean == exp.acc_mean
        assert restored.runs[0].epochs[0].phase_times == {"forward": 0.05, "backward": 0.05}

    def test_json_roundtrip(self):
        text = experiments_to_json([make_experiment()], include_runs=True)
        restored = experiments_from_json(text)
        assert len(restored) == 1
        assert restored[0].model == "gcn"
        assert restored[0].runs[0].test_acc == pytest.approx(0.8)

    def test_json_without_runs_is_compact(self):
        text = experiments_to_json([make_experiment()], include_runs=False)
        assert "epochs" not in text

    def test_csv_header_and_row(self):
        csv_text = experiments_to_csv([make_experiment()])
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("dataset,model,framework")
        assert lines[1].startswith("ENZYMES,gcn,pygx")


def make_serving():
    return ServingResult(
        framework="pygx",
        model="gcn",
        dataset="enzymes",
        n_requests=100,
        completed=90,
        shed=10,
        shed_by_reason={"queue_full": 7, "deadline": 3},
        latency_percentiles={50.0: 0.004, 95.0: 0.02, 99.0: 0.05},
        mean_latency=0.008,
        mean_queue_delay=0.003,
        throughput=1800.0,
        mean_batch_size=12.5,
        batch_size_histogram={1: 2, 32: 4},
        max_queue_depth=64,
        mean_queue_depth=11.0,
        elapsed=0.05,
        gpu_utilization=0.2,
        busy_fraction=0.7,
        phase_times={"data_loading": 0.01, "forward": 0.02, "idle": 0.02},
    )


class TestServingSerialize:
    def test_dict_roundtrip_preserves_key_types(self):
        restored = serving_from_dict(serving_to_dict(make_serving()))
        assert restored == make_serving()
        # JSON forces string keys; the round-trip must restore the originals
        assert restored.latency_percentiles[95.0] == pytest.approx(0.02)
        assert restored.batch_size_histogram[32] == 4

    def test_json_roundtrip(self):
        results = servings_from_json(servings_to_json([make_serving()]))
        assert len(results) == 1
        assert results[0].p99 == pytest.approx(0.05)
        assert results[0].shed_fraction == pytest.approx(0.1)


class TestCharts:
    def test_horizontal_bars_scale_to_max(self):
        out = horizontal_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_horizontal_bars_empty(self):
        assert horizontal_bars({}, title="t") == "t"

    def test_stacked_bars_has_legend_and_totals(self):
        out = stacked_bars(
            {"run": {"load": 1.0, "fwd": 1.0}},
            segments=["load", "fwd"],
            width=20,
        )
        assert "legend:" in out
        assert "#" in out and "=" in out

    def test_stacked_bars_segment_proportions(self):
        out = stacked_bars(
            {"r": {"a": 3.0, "b": 1.0}}, segments=["a", "b"], width=40
        )
        bar_line = out.splitlines()[0]
        assert bar_line.count("#") == 30
        assert bar_line.count("=") == 10

    def test_series_table_contains_values(self):
        out = series_table({"gcn": [1.0, 2.0]}, ["1gpu", "2gpu"], unit="ms")
        assert "gcn" in out and "2ms" in out
