"""The bench-regression gate: green on committed baselines, red on the
synthetic 20% regression fixture, and sane on hand-built documents."""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOL_PATH = os.path.join(REPO_ROOT, "tools", "check_bench_regression.py")
FIXTURE_DIR = os.path.join(
    REPO_ROOT, "tests", "fixtures", "bench_regression", "regressed"
)


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    # dataclass field resolution looks the module up in sys.modules.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


tool = _load_tool()


def test_committed_baselines_pass_against_themselves(capsys):
    rc = tool.main(["--baseline-dir", REPO_ROOT, "--current-dir", REPO_ROOT])
    assert rc == 0
    out = capsys.readouterr().out
    assert "within tolerance" in out


def test_synthetic_20pct_regression_fixture_fails(capsys):
    rc = tool.main(["--baseline-dir", REPO_ROOT, "--current-dir", FIXTURE_DIR])
    assert rc == 1
    out = capsys.readouterr().out
    # Every bench kind regressed in the fixture.
    assert "shed_fraction" in out
    assert "compiled_launches_per_step" in out
    assert "goodput" in out


def test_fixture_regressions_are_20_percent():
    """The fixture really encodes ~20% moves, comfortably past the 10% gate."""
    baseline = json.load(open(os.path.join(REPO_ROOT, "BENCH_compile.json")))
    regressed = json.load(open(os.path.join(FIXTURE_DIR, "BENCH_compile.json")))
    for base, cur in zip(baseline["cells"], regressed["cells"]):
        ratio = cur["compiled_launches_per_step"] / base["compiled_launches_per_step"]
        assert ratio == pytest.approx(1.2, abs=0.02)


def test_single_file_mode(tmp_path):
    base = os.path.join(REPO_ROOT, "BENCH_compile.json")
    assert tool.main(["--baseline", base, "--current", base]) == 0
    bad = os.path.join(FIXTURE_DIR, "BENCH_compile.json")
    assert tool.main(["--baseline", base, "--current", bad]) == 1


def test_within_tolerance_changes_pass(tmp_path):
    """A 5% drift on a gated fraction stays under the 10% gate."""
    serving = json.load(open(os.path.join(REPO_ROOT, "BENCH_serving.json")))
    drifted = json.loads(json.dumps(serving))
    entry = next(e for e in drifted if e["shed"])
    extra = int(round(0.05 * entry["completed"]))
    entry["shed"] += extra
    entry["completed"] -= extra
    cur = tmp_path / "BENCH_serving.json"
    cur.write_text(json.dumps(drifted))
    base = os.path.join(REPO_ROOT, "BENCH_serving.json")
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 0


def test_missing_cell_is_a_regression(tmp_path):
    base = os.path.join(REPO_ROOT, "BENCH_compile.json")
    doc = json.load(open(base))
    doc["cells"] = doc["cells"][1:]
    cur = tmp_path / "BENCH_compile.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_lost_requests_flagged_even_without_metric_drift(tmp_path):
    """faults cells must keep the no-silent-loss invariant: resolved == n."""
    base = os.path.join(REPO_ROOT, "BENCH_faults.json")
    doc = json.load(open(base))
    doc["cells"][0]["resolved"] -= 1
    cur = tmp_path / "BENCH_faults.json"
    cur.write_text(json.dumps(doc))
    rc = tool.main(["--baseline", base, "--current", str(cur)])
    assert rc == 1


def test_parity_flip_is_exact_gated(tmp_path):
    base = os.path.join(REPO_ROOT, "BENCH_compile.json")
    doc = json.load(open(base))
    assert doc["cells"][0]["parity"] is True
    doc["cells"][0]["parity"] = False
    cur = tmp_path / "BENCH_compile.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_ops_fixture_flags_sddmm_and_fp16_cells(capsys):
    """The ops fixture regresses the new sddmm and fp16 columns too: a
    bound flip on an fp16 cell and a launch bump on the fused sddmm."""
    base = os.path.join(REPO_ROOT, "BENCH_ops.json")
    bad = os.path.join(FIXTURE_DIR, "BENCH_ops.json")
    rc = tool.main(["--baseline", base, "--current", bad])
    assert rc == 1
    out = capsys.readouterr().out
    assert "ops[sddmm/dglx/eager/fp16/cora]" in out
    assert "ops[sddmm/dglx/eager/fp32/cora]" in out
    assert "bound" in out and "launches" in out


def test_ops_precision_axis_is_part_of_the_key(tmp_path):
    """Dropping every fp16 cell is a regression (the fp32 twins of the
    same (op, pack, mode, shape) must not mask them) — unless the run is
    declared a reduced --subset grid."""
    base = os.path.join(REPO_ROOT, "BENCH_ops.json")
    doc = json.load(open(base))
    doc["cells"] = [c for c in doc["cells"] if c["precision"] == "fp32"]
    cur = tmp_path / "BENCH_ops.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1
    assert tool.main(["--baseline", base, "--current", str(cur),
                      "--subset"]) == 0


def test_scaling_fixture_regressions_flagged(capsys):
    """The scaling fixture flips the beat-the-baseline and parity gates
    and drops the speedup by ~20%."""
    base = os.path.join(REPO_ROOT, "BENCH_scaling.json")
    bad = os.path.join(FIXTURE_DIR, "BENCH_scaling.json")
    rc = tool.main(["--baseline", base, "--current", bad])
    assert rc == 1
    out = capsys.readouterr().out
    assert "beats_dataparallel" in out
    assert "speedup_vs_dp" in out
    assert "loss_bitwise_identical" in out


def test_scaling_parity_flip_is_exact_gated(tmp_path):
    base = os.path.join(REPO_ROOT, "BENCH_scaling.json")
    doc = json.load(open(base))
    assert doc["parity"][0]["loss_bitwise_identical"] is True
    doc["parity"][0]["loss_bitwise_identical"] = False
    cur = tmp_path / "BENCH_scaling.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_scaling_missing_replica_cell_is_a_regression(tmp_path):
    base = os.path.join(REPO_ROOT, "BENCH_scaling.json")
    doc = json.load(open(base))
    doc["cells"] = doc["cells"][1:]
    cur = tmp_path / "BENCH_scaling.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_fleet_fixture_regressions_flagged(capsys):
    """The fleet fixture drops goodput 20%, inflates p99 25%, and breaks
    the chaos cell's per-tenant no-silent-loss accounting."""
    base = os.path.join(REPO_ROOT, "BENCH_fleet.json")
    bad = os.path.join(FIXTURE_DIR, "BENCH_fleet.json")
    rc = tool.main(["--baseline", base, "--current", bad])
    assert rc == 1
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "p99" in out
    assert "no_silent_loss" in out
    assert "tenants[hooli].resolved" in out


def test_fleet_silent_loss_flagged_even_without_metric_drift(tmp_path):
    """A fleet cell losing one request trips the gate even when every
    gated metric is unchanged."""
    base = os.path.join(REPO_ROOT, "BENCH_fleet.json")
    doc = json.load(open(base))
    doc["cells"][0]["resolved"] -= 1
    cur = tmp_path / "BENCH_fleet.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_fleet_tenant_loss_flagged(tmp_path):
    """Per-tenant accounting is gated independently of the fleet totals."""
    base = os.path.join(REPO_ROOT, "BENCH_fleet.json")
    doc = json.load(open(base))
    tenants = doc["cells"][0]["tenants"]
    tenants[sorted(tenants)[0]]["resolved"] -= 1
    cur = tmp_path / "BENCH_fleet.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_fleet_subset_skips_missing_cells(tmp_path):
    """--subset gates only the cells a reduced CI grid regenerated."""
    base = os.path.join(REPO_ROOT, "BENCH_fleet.json")
    doc = json.load(open(base))
    doc["cells"] = [c for c in doc["cells"]
                    if c["kind"] == "replicas" and c["replicas"] <= 2]
    cur = tmp_path / "BENCH_fleet.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur),
                      "--subset"]) == 0
    # Without --subset the missing cells are regressions.
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_fleet_missing_cell_is_a_regression(tmp_path):
    base = os.path.join(REPO_ROOT, "BENCH_fleet.json")
    doc = json.load(open(base))
    doc["cells"] = doc["cells"][1:]
    cur = tmp_path / "BENCH_fleet.json"
    cur.write_text(json.dumps(doc))
    assert tool.main(["--baseline", base, "--current", str(cur)]) == 1


def test_usage_error_on_missing_baseline_dir(tmp_path):
    rc = tool.main(["--baseline-dir", str(tmp_path), "--current-dir", str(tmp_path)])
    assert rc == 2
