"""The docs gate: green on the repo itself, red on seeded violations."""

from __future__ import annotations

import importlib.util
import os
import pathlib
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOL_PATH = os.path.join(REPO_ROOT, "tools", "check_docs.py")


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_docs", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


tool = _load_tool()


@pytest.fixture()
def repo(tmp_path):
    """A minimal healthy repo tree the violation tests then break."""
    (tmp_path / "src" / "repro" / "alpha").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "alpha" / "__init__.py").write_text("")
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "api.md").write_text("# API\n\n## `repro.alpha`\n\nstuff\n")
    (tmp_path / "README.md").write_text("# Readme\n\nSee [api](docs/api.md).\n")
    return tmp_path


class TestRealRepo:
    def test_gate_passes_on_this_repository(self, capsys):
        assert tool.main(["--root", REPO_ROOT, "--skip-snippets"]) == 0
        out = capsys.readouterr().out
        assert "api coverage: OK" in out and "links: OK" in out

    def test_every_public_package_is_documented(self):
        assert tool.check_api_coverage(pathlib.Path(REPO_ROOT)) == []

    def test_repo_docs_contain_runnable_snippets(self):
        docs = pathlib.Path(REPO_ROOT) / "docs"
        found = [s for doc in docs.glob("*.md")
                 for s in tool.python_snippets(doc)]
        assert found, "docs/ should carry at least one executable example"


class TestApiCoverage:
    def test_healthy_tree_passes(self, repo):
        assert tool.check_api_coverage(repo) == []

    def test_undocumented_package_fails(self, repo):
        pkg = repo / "src" / "repro" / "beta"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        failures = tool.check_api_coverage(repo)
        assert len(failures) == 1 and "repro.beta" in failures[0]

    def test_private_and_plain_dirs_ignored(self, repo):
        (repo / "src" / "repro" / "_internal").mkdir()
        (repo / "src" / "repro" / "_internal" / "__init__.py").write_text("")
        (repo / "src" / "repro" / "notapkg").mkdir()  # no __init__.py
        assert tool.check_api_coverage(repo) == []

    def test_missing_api_md_fails(self, repo):
        (repo / "docs" / "api.md").unlink()
        assert tool.check_api_coverage(repo) == ["docs/api.md is missing"]


class TestLinks:
    def test_healthy_tree_passes(self, repo):
        assert tool.check_links(repo) == []

    def test_broken_file_link_fails(self, repo):
        (repo / "docs" / "extra.md").write_text("[gone](missing.md)\n")
        failures = tool.check_links(repo)
        assert len(failures) == 1 and "missing.md" in failures[0]

    def test_broken_anchor_fails_good_anchor_passes(self, repo):
        (repo / "docs" / "extra.md").write_text(
            "[ok](api.md#reproalpha)\n[bad](api.md#nope)\n"
        )
        failures = tool.check_links(repo)
        assert len(failures) == 1 and "#nope" in failures[0]

    def test_external_links_skipped(self, repo):
        (repo / "docs" / "extra.md").write_text(
            "[w](https://example.com/x) [m](mailto:a@b.c)\n"
        )
        assert tool.check_links(repo) == []

    def test_links_inside_code_fences_ignored(self, repo):
        (repo / "docs" / "extra.md").write_text(
            "```\n[not a link](nowhere.md)\n```\n"
        )
        assert tool.check_links(repo) == []

    def test_slugify_matches_github_style(self):
        assert tool.slugify("## `repro.alpha`".lstrip("#")) == "reproalpha"
        assert (tool.slugify("Streams, events, and overlap accounting")
                == "streams-events-and-overlap-accounting")


class TestSnippets:
    def test_passing_snippet(self, repo):
        (repo / "docs" / "code.md").write_text(
            "```python\nassert 1 + 1 == 2\n```\n"
        )
        assert tool.check_snippets(repo) == []

    def test_failing_snippet_reported_with_line(self, repo):
        (repo / "docs" / "code.md").write_text(
            "intro\n\n```python\nraise ValueError('boom')\n```\n"
        )
        failures = tool.check_snippets(repo)
        assert len(failures) == 1
        assert "code.md:3" in failures[0] and "boom" in failures[0]

    def test_no_run_tag_and_other_languages_skipped(self, repo):
        (repo / "docs" / "code.md").write_text(
            "```python no-run\nundefined_name\n```\n"
            "```bash\nexit 1\n```\n```\nplain text\n```\n"
        )
        assert tool.check_snippets(repo) == []

    def test_main_reports_failure_exit_code(self, repo, capsys):
        (repo / "docs" / "code.md").write_text("[gone](missing.md)\n")
        assert tool.main(["--root", str(repo)]) == 1
        assert "FAIL" in capsys.readouterr().out
