"""SLA-tiered queues and per-tenant admission quotas."""

import numpy as np
import pytest

from repro.fleet import Tenant, TenantQuota, TieredQueue
from repro.fleet.request import FleetRequest
from repro.graph import GraphSample
from repro.serve.request import Overloaded

GOLD = Tenant("g", tier="gold")
SILVER = Tenant("s", tier="silver")
BRONZE = Tenant("b", tier="bronze")


def _request(request_id, tenant=None):
    sample = GraphSample(
        edge_index=np.zeros((2, 1), dtype=np.int64),
        x=np.zeros((2, 3), dtype=np.float32),
        y=0,
    )
    return FleetRequest(
        request_id=request_id, sample=sample, arrival_time=0.0, tenant=tenant
    )


class TestTieredQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TieredQueue(0)

    def test_pop_is_priority_then_fifo(self):
        queue = TieredQueue(8)
        queue.push(_request(0, BRONZE))
        queue.push(_request(1, GOLD))
        queue.push(_request(2, SILVER))
        queue.push(_request(3, GOLD))
        order = [queue.pop().request_id for _ in range(4)]
        assert order == [1, 3, 2, 0]

    def test_peek_does_not_remove(self):
        queue = TieredQueue(4)
        queue.push(_request(0, SILVER))
        assert queue.peek().request_id == 0
        assert len(queue) == 1

    def test_peek_empty_is_none(self):
        assert TieredQueue(4).peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            TieredQueue(4).pop()

    def test_capacity_is_shared_across_tiers(self):
        queue = TieredQueue(2)
        queue.push(_request(0, GOLD))
        queue.push(_request(1, BRONZE))
        assert queue.full
        with pytest.raises(Overloaded):
            queue.push(_request(2, GOLD))

    def test_overloaded_carries_queue_depth(self):
        queue = TieredQueue(1)
        queue.push(_request(0))
        with pytest.raises(Overloaded) as excinfo:
            queue.push(_request(1))
        assert excinfo.value.queue_depth == 1

    def test_drain_returns_priority_order_and_empties(self):
        queue = TieredQueue(8)
        queue.push(_request(0, BRONZE))
        queue.push(_request(1, GOLD))
        drained = queue.drain()
        assert [r.request_id for r in drained] == [1, 0]
        assert len(queue) == 0

    def test_depth_by_tier(self):
        queue = TieredQueue(8)
        queue.push(_request(0, GOLD))
        queue.push(_request(1, GOLD))
        queue.push(_request(2, BRONZE))
        assert queue.depth_by_tier() == {"gold": 2, "silver": 0, "bronze": 1}

    def test_iteration_yields_priority_order(self):
        queue = TieredQueue(8)
        queue.push(_request(0, BRONZE))
        queue.push(_request(1, GOLD))
        assert [r.request_id for r in queue] == [1, 0]

    def test_tenantless_requests_queue_as_bronze(self):
        queue = TieredQueue(8)
        queue.push(_request(0))
        assert queue.depth_by_tier()["bronze"] == 1


class TestTenantQuota:
    def test_unquotaed_tenant_always_admits(self):
        quota = TenantQuota()
        tenant = Tenant("t")
        for _ in range(100):
            assert quota.try_acquire(tenant)
        assert quota.outstanding(tenant) == 100

    def test_tenantless_requests_bypass_quota(self):
        assert TenantQuota().try_acquire(None)

    def test_quota_bounds_outstanding(self):
        quota = TenantQuota()
        tenant = Tenant("t", quota=2)
        assert quota.try_acquire(tenant)
        assert quota.try_acquire(tenant)
        assert not quota.try_acquire(tenant)

    def test_release_frees_a_slot(self):
        quota = TenantQuota()
        tenant = Tenant("t", quota=1)
        assert quota.try_acquire(tenant)
        assert not quota.try_acquire(tenant)
        quota.release(tenant)
        assert quota.try_acquire(tenant)

    def test_quotas_are_per_tenant(self):
        quota = TenantQuota()
        first = Tenant("a", quota=1)
        second = Tenant("b", quota=1)
        assert quota.try_acquire(first)
        assert quota.try_acquire(second)
        assert not quota.try_acquire(first)

    def test_release_underflow_raises(self):
        quota = TenantQuota()
        with pytest.raises(RuntimeError, match="underflow"):
            quota.release(Tenant("t"))

    def test_release_none_is_noop(self):
        TenantQuota().release(None)
