"""LRU result cache semantics and hit-rate accounting."""

import pytest

from repro.fleet import ResultCache


class TestResultCache:
    @pytest.mark.parametrize("capacity", [0, -1])
    def test_capacity_must_be_positive(self, capacity):
        with pytest.raises(ValueError):
            ResultCache(capacity)

    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(7) is None
        cache.put(7, 3)
        assert cache.get(7) == 3
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.lookups == 2
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_with_no_lookups_is_zero(self):
        assert ResultCache(1).hit_rate == 0.0

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(2)
        cache.put(1, 10)
        cache.put(2, 20)
        cache.put(3, 30)
        assert 1 not in cache
        assert 2 in cache and 3 in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put(1, 10)
        cache.put(2, 20)
        assert cache.get(1) == 10
        cache.put(3, 30)
        # 2 was the least recently used after the get(1) refresh.
        assert 2 not in cache
        assert 1 in cache and 3 in cache

    def test_put_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put(1, 10)
        cache.put(2, 20)
        cache.put(1, 11)
        cache.put(3, 30)
        assert 2 not in cache
        assert cache.get(1) == 11

    def test_put_existing_key_does_not_evict(self):
        cache = ResultCache(2)
        cache.put(1, 10)
        cache.put(2, 20)
        cache.put(2, 21)
        assert len(cache) == 2
        assert cache.evictions == 0

    def test_len_is_bounded_by_capacity(self):
        cache = ResultCache(3)
        for key in range(10):
            cache.put(key, key)
        assert len(cache) == 3
        assert cache.evictions == 7
