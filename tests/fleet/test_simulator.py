"""End-to-end fleet replays: routing, caching, quotas, chaos, autoscaling,
and the per-tenant no-silent-loss invariant."""

import json

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.fleet import (
    Arrival,
    AutoscalerConfig,
    ChaosPlan,
    FleetSimulator,
    ResultCache,
    Tenant,
)
from repro.models import graph_config
from repro.serve import DynamicBatcher, InferenceModel


@pytest.fixture(scope="module")
def dataset():
    return enzymes(seed=0, num_graphs=24)


@pytest.fixture(scope="module")
def inference(dataset):
    from repro.pygx import build_model

    config = graph_config(
        "gcn", in_dim=dataset.num_features, n_classes=dataset.num_classes
    )
    return InferenceModel(
        "pygx", build_model(config, np.random.default_rng(0)), config, "enzymes"
    )


def _trace(n, gap=0.01, tenant=None, sample_idx=None, start=0.001):
    tenant = tenant or Tenant("t")
    return [
        Arrival(start + i * gap, tenant, sample_idx if sample_idx is not None else i)
        for i in range(n)
    ]


class TestReplayBasics:
    def test_low_load_completes_everything(self, dataset, inference):
        simulator = FleetSimulator(inference, n_replicas=2, seed=0)
        result = simulator.replay(dataset.graphs, _trace(30))
        assert result.completed == 30
        assert result.shed == 0 and result.failed == 0
        assert result.no_silent_loss
        assert result.policy == "p2c"
        assert result.initial_replicas == 2
        assert result.elapsed > 0.0
        assert result.goodput > 0.0
        assert 0.0 < result.p50 <= result.p99

    def test_both_replicas_share_the_work(self, dataset, inference):
        simulator = FleetSimulator(
            inference, n_replicas=2, policy="round_robin", seed=0
        )
        result = simulator.replay(dataset.graphs, _trace(30))
        served = {r.replica_id: r.requests_served for r in result.replicas}
        assert served[0] > 0 and served[1] > 0
        assert sum(served.values()) == 30

    def test_per_tenant_accounting(self, dataset, inference):
        gold, bronze = Tenant("g", tier="gold"), Tenant("b")
        arrivals = sorted(
            _trace(10, tenant=gold) + _trace(10, tenant=bronze, start=0.0015),
            key=lambda a: (a.time, a.tenant.name, a.sample_idx),
        )
        simulator = FleetSimulator(inference, n_replicas=2, seed=0)
        result = simulator.replay(dataset.graphs, arrivals)
        assert set(result.tenants) == {"g", "b"}
        assert result.tenants["g"].n_requests == 10
        assert result.tenants["g"].resolved == 10
        assert result.tenants["b"].resolved == 10

    def test_validation(self, dataset, inference):
        with pytest.raises(ValueError, match="n_replicas"):
            FleetSimulator(inference, n_replicas=0)
        simulator = FleetSimulator(inference, n_replicas=1)
        with pytest.raises(ValueError, match="sample"):
            simulator.replay([], _trace(3))
        with pytest.raises(ValueError, match="trace"):
            simulator.replay(dataset.graphs, [])
        backwards = list(reversed(_trace(3)))
        with pytest.raises(ValueError, match="non-decreasing"):
            simulator.replay(dataset.graphs, backwards)


class TestCache:
    def test_repeated_content_hits_the_cache(self, dataset, inference):
        simulator = FleetSimulator(
            inference, n_replicas=1, cache=ResultCache(8), seed=0
        )
        # Same sample over and over, spaced out so the first completes
        # (and fills the cache) before the rest arrive.
        result = simulator.replay(dataset.graphs, _trace(10, gap=0.05, sample_idx=3))
        assert result.cache_hits > 0
        assert result.cache_hit_rate > 0.0
        assert result.completed == 10

    def test_cold_unique_content_never_hits(self, dataset, inference):
        simulator = FleetSimulator(
            inference, n_replicas=1, cache=ResultCache(8), seed=0
        )
        result = simulator.replay(dataset.graphs, _trace(10, gap=0.05))
        assert result.cache_hits == 0
        assert result.cache_misses == 10


class TestAdmissionControl:
    def test_quota_exhaustion_sheds_with_reason(self, dataset, inference):
        capped = Tenant("capped", quota=2)
        arrivals = [Arrival(0.001, capped, i) for i in range(12)]
        simulator = FleetSimulator(inference, n_replicas=1, seed=0)
        result = simulator.replay(dataset.graphs, arrivals)
        assert result.shed_by_reason.get("quota", 0) > 0
        assert result.no_silent_loss
        assert result.tenants["capped"].resolved == 12

    def test_overload_sheds_queue_full(self, dataset, inference):
        simulator = FleetSimulator(
            inference, n_replicas=1, queue_capacity=2, seed=0,
            batcher=DynamicBatcher(max_batch_size=2),
        )
        arrivals = [Arrival(0.001, Tenant("t"), i) for i in range(20)]
        result = simulator.replay(dataset.graphs, arrivals)
        assert result.shed_by_reason.get("queue_full", 0) > 0
        assert result.no_silent_loss


class TestDeterminism:
    def _run(self, dataset, inference, seed):
        simulator = FleetSimulator(inference, n_replicas=4, policy="p2c", seed=seed)
        result = simulator.replay(dataset.graphs, _trace(40, gap=0.0002))
        return simulator, result

    def test_seeded_replays_are_identical(self, dataset, inference):
        first_sim, first = self._run(dataset, inference, seed=7)
        second_sim, second = self._run(dataset, inference, seed=7)
        assert first_sim.policy.decisions == second_sim.policy.decisions
        assert (first.completed, first.shed, first.failed) == (
            second.completed, second.shed, second.failed
        )
        assert first.latency_percentiles == second.latency_percentiles
        assert first.elapsed == second.elapsed


class TestChaos:
    def test_replica_loss_is_never_silent(self, dataset, inference):
        chaos = ChaosPlan(seed=3, loss_times=(0.002, 0.004), downtime=0.01)
        simulator = FleetSimulator(inference, n_replicas=2, chaos=chaos, seed=0)
        result = simulator.replay(dataset.graphs, _trace(40, gap=0.0002))
        assert result.replica_losses == 2
        assert result.no_silent_loss
        assert result.completed > 0

    def test_lost_backlog_is_rerouted(self, dataset, inference):
        chaos = ChaosPlan(seed=0, loss_times=(0.002,), downtime=0.05)
        simulator = FleetSimulator(
            inference, n_replicas=2, chaos=chaos, policy="round_robin", seed=0
        )
        result = simulator.replay(dataset.graphs, _trace(40, gap=0.0002))
        assert result.reroutes > 0
        assert result.no_silent_loss


class TestAutoscaling:
    def test_burst_triggers_scale_up_with_visible_warmup(self, dataset, inference):
        config = AutoscalerConfig(
            min_replicas=1, max_replicas=4, interval=0.001,
            scale_up_queue_depth=3.0, cooldown=0.002,
        )
        simulator = FleetSimulator(inference, n_replicas=1, autoscaler=config, seed=0)
        simulator.device.profiler.enabled = True
        result = simulator.replay(dataset.graphs, _trace(60, gap=0.0001))
        assert result.scale_ups > 0
        assert result.peak_replicas > 1
        assert result.no_silent_loss
        warmups = [
            r for r in simulator.device.profiler.records if r.name == "replica_warmup"
        ]
        assert warmups
        assert all(r.duration > 0 for r in warmups)

    def test_warm_start_cost_follows_the_device_cost_model(self, dataset, inference):
        simulator = FleetSimulator(inference, n_replicas=1, seed=0)
        replica = simulator.replicas[0]
        warm = replica.warm_start_seconds(boot_overhead=2e-3)
        transfer = simulator.device.spec.transfer_time(
            4.0 * inference.model.num_parameters()
        )
        assert warm == pytest.approx(transfer + 2e-3)
        assert warm > 2e-3


class TestChromeTrace:
    def test_trace_has_one_track_per_replica(self, dataset, inference, tmp_path):
        simulator = FleetSimulator(inference, n_replicas=2, seed=0)
        simulator.device.profiler.enabled = True
        simulator.replay(dataset.graphs, _trace(20))
        path = tmp_path / "fleet_trace.json"
        simulator.write_trace(path)
        trace = json.loads(path.read_text())
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        for expected in ("replica0", "replica1", "replica0.host"):
            assert any(name.startswith(f"{expected} (") for name in names), names
