"""Fleet metrics: per-tenant fan-out and the no-silent-loss invariant."""

import numpy as np
import pytest

from repro.fleet import (
    FleetMetrics,
    FleetRequest,
    FleetResponse,
    FleetResult,
    Tenant,
    TenantSummary,
)
from repro.graph import GraphSample

GOLD = Tenant("acme", tier="gold")
BRONZE = Tenant("hooli", tier="bronze")


def _request(request_id, tenant):
    sample = GraphSample(
        edge_index=np.zeros((2, 1), dtype=np.int64),
        x=np.zeros((2, 3), dtype=np.float32),
        y=0,
    )
    return FleetRequest(
        request_id=request_id, sample=sample, arrival_time=0.0, tenant=tenant
    )


def _response(request_id, tenant, latency=0.01):
    return FleetResponse(
        request_id=request_id, prediction=0, arrival_time=0.0,
        dispatch_time=0.0, completion_time=latency, batch_size=1,
        tenant=tenant.name, replica=0,
    )


def _summary(**overrides):
    defaults = dict(
        tenant="t", tier="bronze", n_requests=10, completed=10, shed=0,
        failed=0, shed_by_reason={}, failed_by_reason={},
        latency_percentiles={50.0: 0.01, 95.0: 0.02, 99.0: 0.03},
    )
    defaults.update(overrides)
    return TenantSummary(**defaults)


def _result(**overrides):
    defaults = dict(
        policy="p2c", initial_replicas=2, peak_replicas=2, final_replicas=2,
        n_requests=10, completed=10, shed=0, failed=0,
        shed_by_reason={}, failed_by_reason={},
        latency_percentiles={50.0: 0.01, 95.0: 0.02, 99.0: 0.03},
        mean_latency=0.01, mean_queue_delay=0.001, mean_batch_size=4.0,
        elapsed=2.0, gpu_utilization=0.5, busy_fraction=0.5,
        phase_times={}, tenants={}, replicas=[],
        cache_hits=3, cache_misses=7, retries=0, batch_splits=0,
        circuit_opens=0, reroutes=0, replica_losses=0,
        scale_ups=0, scale_downs=0,
    )
    defaults.update(overrides)
    return FleetResult(**defaults)


class TestFleetMetrics:
    def test_responses_fan_out_per_tenant(self):
        metrics = FleetMetrics()
        for i, tenant in enumerate([GOLD, GOLD, BRONZE]):
            metrics.record_arrival(_request(i, tenant))
        metrics.record_responses(
            [_response(0, GOLD), _response(1, GOLD), _response(2, BRONZE)]
        )
        summaries = metrics.tenant_summaries()
        assert summaries["acme"].completed == 2
        assert summaries["hooli"].completed == 1
        assert summaries["acme"].tier == "gold"
        assert metrics.overall.completed == 3

    def test_shed_and_failed_fan_out_with_reasons(self):
        metrics = FleetMetrics()
        metrics.record_arrival(_request(0, GOLD))
        metrics.record_arrival(_request(1, BRONZE))
        metrics.record_shed("quota", [_request(0, GOLD)])
        metrics.record_failure("replica_lost", [_request(1, BRONZE)])
        summaries = metrics.tenant_summaries()
        assert summaries["acme"].shed_by_reason == {"quota": 1}
        assert summaries["hooli"].failed_by_reason == {"replica_lost": 1}
        assert summaries["acme"].resolved == 1
        assert summaries["hooli"].resolved == 1

    def test_summaries_count_arrivals_per_tenant(self):
        metrics = FleetMetrics()
        for i in range(3):
            metrics.record_arrival(_request(i, GOLD))
        assert metrics.tenant_summaries()["acme"].n_requests == 3

    def test_window_p99_with_no_responses_is_zero(self):
        assert FleetMetrics().window_p99(16) == 0.0

    def test_reroute_counter(self):
        metrics = FleetMetrics()
        metrics.record_reroute()
        metrics.record_reroute(2)
        assert metrics.reroutes == 3


class TestTenantSummary:
    def test_resolved_and_percentile_properties(self):
        summary = _summary(completed=7, shed=2, failed=1)
        assert summary.resolved == 10
        assert summary.p50 == 0.01
        assert summary.p99 == 0.03


class TestFleetResult:
    def test_resolved_and_goodput(self):
        result = _result(completed=8, shed=1, failed=1, elapsed=2.0)
        assert result.resolved == 10
        assert result.goodput == pytest.approx(4.0)

    def test_goodput_with_zero_elapsed(self):
        assert _result(elapsed=0.0).goodput == 0.0

    def test_cache_hit_rate(self):
        assert _result(cache_hits=3, cache_misses=7).cache_hit_rate == 0.3
        assert _result(cache_hits=0, cache_misses=0).cache_hit_rate == 0.0

    def test_no_silent_loss_requires_fleet_total(self):
        assert _result().no_silent_loss
        assert not _result(completed=9).no_silent_loss

    def test_no_silent_loss_requires_every_tenant(self):
        good = _result(tenants={"t": _summary()})
        assert good.no_silent_loss
        leaky = _result(tenants={"t": _summary(completed=9)})
        assert not leaky.no_silent_loss

    def test_percentile_properties(self):
        result = _result()
        assert (result.p50, result.p95, result.p99) == (0.01, 0.02, 0.03)
