"""The scaling control loop: thresholds, cooldown, population caps, and
victim selection — exercised against a minimal fake replica roster."""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.fleet import Autoscaler, AutoscalerConfig


@dataclass
class FakeReplica:
    """The roster surface the autoscaler reads."""

    id: int
    queue: List = field(default_factory=list)
    state: str = "up"
    free: bool = True

    @property
    def is_up(self):
        return self.state == "up"


def _config(**overrides):
    defaults = dict(
        min_replicas=1, max_replicas=4, interval=0.01,
        scale_up_queue_depth=4.0, scale_down_queue_depth=1.0, cooldown=0.05,
    )
    defaults.update(overrides)
    return AutoscalerConfig(**defaults)


def _busy(replica_id, depth):
    return FakeReplica(id=replica_id, queue=[object()] * depth, free=False)


class TestAutoscalerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_replicas": 0},
            {"min_replicas": 4, "max_replicas": 2},
            {"interval": 0.0},
            {"window": 0},
            {"cooldown": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerConfig(**kwargs)

    def test_defaults_are_valid(self):
        AutoscalerConfig()


class TestDecide:
    def test_holds_under_light_load(self):
        scaler = Autoscaler(_config(min_replicas=1))
        # Depth 2 sits between the down (1.0) and up (4.0) thresholds.
        assert scaler.decide(1.0, [_busy(0, 2)], window_p99=0.0) == 0

    def test_scales_up_on_queue_depth(self):
        scaler = Autoscaler(_config())
        assert scaler.decide(1.0, [_busy(0, 10)], window_p99=0.0) == +1
        assert scaler.scale_ups == 1

    def test_scales_up_on_p99(self):
        scaler = Autoscaler(_config(scale_up_p99=0.1))
        assert scaler.decide(1.0, [_busy(0, 0)], window_p99=0.5) == +1

    def test_p99_signal_disabled_by_default(self):
        scaler = Autoscaler(_config())
        assert scaler.decide(1.0, [_busy(0, 0)], window_p99=99.0) == 0

    def test_population_cap_blocks_scale_up(self):
        scaler = Autoscaler(_config(max_replicas=2))
        roster = [_busy(0, 10), _busy(1, 10)]
        assert scaler.decide(1.0, roster, window_p99=0.0) == 0

    def test_warming_replicas_count_toward_the_cap(self):
        scaler = Autoscaler(_config(max_replicas=2))
        roster = [_busy(0, 10), FakeReplica(id=1, state="warming")]
        assert scaler.decide(1.0, roster, window_p99=0.0) == 0

    def test_warming_replicas_do_not_dilute_the_load_average(self):
        scaler = Autoscaler(_config(max_replicas=8))
        roster = [_busy(0, 5), FakeReplica(id=1, state="warming")]
        # Depth is 5/1 over up replicas, not 5/2: still above threshold.
        assert scaler.decide(1.0, roster, window_p99=0.0) == +1

    def test_cooldown_suppresses_back_to_back_actions(self):
        scaler = Autoscaler(_config(cooldown=0.05))
        assert scaler.decide(1.0, [_busy(0, 10)], window_p99=0.0) == +1
        assert scaler.decide(1.01, [_busy(0, 10)], window_p99=0.0) == 0
        assert scaler.decide(1.06, [_busy(0, 10)], window_p99=0.0) == +1

    def test_scales_down_only_with_an_idle_replica(self):
        scaler = Autoscaler(_config(min_replicas=1))
        busy_pair = [_busy(0, 0), _busy(1, 0)]
        assert scaler.decide(1.0, busy_pair, window_p99=0.0) == 0
        with_idle = [_busy(0, 0), FakeReplica(id=1)]
        assert scaler.decide(2.0, with_idle, window_p99=0.0) == -1
        assert scaler.scale_downs == 1

    def test_min_replicas_floor_blocks_scale_down(self):
        scaler = Autoscaler(_config(min_replicas=1))
        assert scaler.decide(1.0, [FakeReplica(id=0)], window_p99=0.0) == 0

    def test_hot_p99_blocks_scale_down(self):
        scaler = Autoscaler(_config(scale_up_p99=0.1, max_replicas=2))
        roster = [_busy(0, 0), FakeReplica(id=1)]
        assert scaler.decide(1.0, roster, window_p99=0.05) == -1
        scaler = Autoscaler(_config(scale_up_p99=0.01, max_replicas=4))
        # p99 above threshold scales *up* instead.
        assert scaler.decide(1.0, roster, window_p99=0.05) == +1
        scaler = Autoscaler(_config(scale_up_p99=0.01, max_replicas=2))
        # ... unless the population cap is already reached: hold, don't shrink.
        assert scaler.decide(1.0, roster, window_p99=0.05) == 0

    def test_all_replicas_lost_adds_capacity(self):
        scaler = Autoscaler(_config(max_replicas=2))
        roster = [FakeReplica(id=0, state="down")]
        assert scaler.decide(1.0, roster, window_p99=0.0) == +1

    def test_decide_advances_next_eval(self):
        scaler = Autoscaler(_config(interval=0.01))
        scaler.decide(1.0, [FakeReplica(id=0)], window_p99=0.0)
        assert scaler.next_eval == pytest.approx(1.01)


class TestPickScaleDown:
    def test_picks_highest_id_idle_replica(self):
        scaler = Autoscaler(_config())
        roster = [FakeReplica(id=0), _busy(1, 3), FakeReplica(id=2)]
        assert scaler.pick_scale_down(roster).id == 2

    def test_no_idle_replica_returns_none(self):
        scaler = Autoscaler(_config())
        assert scaler.pick_scale_down([_busy(0, 1)]) is None
