"""Chaos plans and schedules: validation, cursor semantics, seeded
victim selection."""

import pytest

from repro.fleet import ChaosPlan, ChaosSchedule


class TestChaosPlan:
    def test_default_plan_is_valid(self):
        plan = ChaosPlan()
        assert plan.loss_times == ()
        assert plan.fault_plan is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"downtime": 0.0},
            {"downtime": -0.1},
            {"loss_times": (-0.1,)},
            {"loss_times": (0.3, 0.1)},
            {"max_dispatches": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChaosPlan(**kwargs)

    def test_frozen(self):
        plan = ChaosPlan()
        with pytest.raises(AttributeError):
            plan.downtime = 1.0

    def test_start_builds_a_schedule(self):
        schedule = ChaosPlan(loss_times=(0.1,)).start()
        assert isinstance(schedule, ChaosSchedule)
        assert schedule.next_loss == 0.1


class TestChaosSchedule:
    def test_pop_due_consumes_in_order(self):
        schedule = ChaosPlan(loss_times=(0.1, 0.2)).start()
        assert schedule.pop_due(0.05) is None
        assert schedule.pop_due(0.15) == 0.1
        assert schedule.next_loss == 0.2
        assert schedule.pop_due(0.25) == 0.2
        assert schedule.next_loss is None
        assert schedule.pop_due(1.0) is None

    def test_independent_runs_share_no_cursor(self):
        plan = ChaosPlan(loss_times=(0.1,))
        first, second = plan.start(), plan.start()
        assert first.pop_due(0.2) == 0.1
        assert second.next_loss == 0.1

    def test_pick_victim_empty_roster_is_none(self):
        assert ChaosPlan().start().pick_victim([]) is None

    def test_pick_victim_is_seeded_deterministic(self):
        roster = list(range(6))
        picks_a = [ChaosPlan(seed=9).start().pick_victim(roster) for _ in range(1)]
        first = ChaosPlan(seed=9).start()
        second = ChaosPlan(seed=9).start()
        assert [first.pick_victim(roster) for _ in range(20)] == [
            second.pick_victim(roster) for _ in range(20)
        ]
        assert picks_a[0] in roster

    def test_pick_victim_draws_from_the_given_roster(self):
        schedule = ChaosPlan(seed=0).start()
        picks = {schedule.pick_victim(["a", "b", "c"]) for _ in range(50)}
        assert picks <= {"a", "b", "c"}
        assert len(picks) > 1
