"""Multi-tenant traffic generators: Zipf skew, diurnal/flash shapes,
deterministic merging."""

import numpy as np
import pytest

from repro.fleet import (
    Arrival,
    Tenant,
    bursty_multitenant_trace,
    diurnal_trace,
    flash_crowd_trace,
    merge_traces,
    zipf_sample_indices,
)

TENANT = Tenant("t")


class TestZipfSampleIndices:
    def test_head_is_hotter_than_tail(self):
        indices = zipf_sample_indices(
            5000, n_samples=50, skew=1.1, rng=np.random.default_rng(0)
        )
        counts = np.bincount(indices, minlength=50)
        assert counts[0] > counts[-1]
        # The top-5 head absorbs a disproportionate share.
        assert counts[:5].sum() > 0.3 * len(indices)

    def test_indices_stay_in_range(self):
        indices = zipf_sample_indices(
            200, n_samples=7, rng=np.random.default_rng(0)
        )
        assert indices.min() >= 0
        assert indices.max() < 7

    def test_seeded_determinism(self):
        a = zipf_sample_indices(100, 10, rng=np.random.default_rng(3))
        b = zipf_sample_indices(100, 10, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("n_samples,skew", [(0, 1.1), (10, 0.0)])
    def test_validation(self, n_samples, skew):
        with pytest.raises(ValueError):
            zipf_sample_indices(10, n_samples, skew)


class TestDiurnalTrace:
    def test_times_are_increasing(self):
        trace = diurnal_trace(
            TENANT, 100, base_rate=100.0, rng=np.random.default_rng(0)
        )
        times = [a.time for a in trace]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_all_arrivals_belong_to_the_tenant(self):
        trace = diurnal_trace(
            TENANT, 10, base_rate=100.0, rng=np.random.default_rng(0)
        )
        assert all(a.tenant is TENANT for a in trace)

    def test_seeded_determinism(self):
        a = diurnal_trace(TENANT, 50, 100.0, rng=np.random.default_rng(1))
        b = diurnal_trace(TENANT, 50, 100.0, rng=np.random.default_rng(1))
        assert a == b

    def test_rate_modulation_compresses_peak_gaps(self):
        """Arrivals cluster when the sinusoid peaks: the busiest
        half-period holds more arrivals than the slowest."""
        trace = diurnal_trace(
            TENANT, 2000, base_rate=1000.0, period=1.0, amplitude=0.8,
            rng=np.random.default_rng(0),
        )
        peak = sum(1 for a in trace if (a.time % 1.0) < 0.5)
        trough = sum(1 for a in trace if (a.time % 1.0) >= 0.5)
        assert peak > trough

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_requests": 0},
            {"base_rate": 0.0},
            {"amplitude": 1.0},
            {"amplitude": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(n_requests=10, base_rate=100.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            diurnal_trace(TENANT, **defaults)


class TestFlashCrowdTrace:
    def test_spike_window_is_denser(self):
        trace = flash_crowd_trace(
            TENANT, 2000, base_rate=500.0, spike_at=0.5,
            spike_rate=20000.0, spike_duration=0.1,
            rng=np.random.default_rng(0),
        )
        in_spike = sum(1 for a in trace if 0.5 <= a.time < 0.6)
        before = sum(1 for a in trace if a.time < 0.5)
        # The 0.1s spike window out-paces the 0.5s of lead-in traffic.
        assert in_spike > before

    def test_seeded_determinism(self):
        kwargs = dict(
            n_requests=50, base_rate=100.0, spike_at=0.1,
            spike_rate=1000.0, spike_duration=0.05,
        )
        a = flash_crowd_trace(TENANT, rng=np.random.default_rng(2), **kwargs)
        b = flash_crowd_trace(TENANT, rng=np.random.default_rng(2), **kwargs)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_requests": 0},
            {"base_rate": 0.0},
            {"spike_rate": 0.0},
            {"spike_at": -1.0},
            {"spike_duration": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(
            n_requests=10, base_rate=100.0, spike_at=0.1,
            spike_rate=1000.0, spike_duration=0.05,
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            flash_crowd_trace(TENANT, **defaults)


class TestMergeTraces:
    def test_merged_order_is_by_time(self):
        first = [Arrival(0.3, TENANT, 0), Arrival(0.9, TENANT, 1)]
        second = [Arrival(0.1, TENANT, 2), Arrival(0.5, TENANT, 3)]
        merged = merge_traces(first, second)
        assert [a.time for a in merged] == [0.1, 0.3, 0.5, 0.9]

    def test_ties_break_by_tenant_name_then_sample(self):
        a, b = Tenant("a"), Tenant("b")
        merged = merge_traces(
            [Arrival(0.5, b, 1)], [Arrival(0.5, a, 9), Arrival(0.5, a, 2)]
        )
        assert [(x.tenant.name, x.sample_idx) for x in merged] == [
            ("a", 2), ("a", 9), ("b", 1)
        ]


class TestBurstyMultitenantTrace:
    def test_three_tenants_with_expected_tiers(self):
        trace = bursty_multitenant_trace(n_samples=10, n_requests=100, seed=0)
        tiers = {a.tenant.name: a.tenant.tier for a in trace}
        assert tiers == {"acme": "gold", "initech": "silver", "hooli": "bronze"}

    def test_request_count_and_ordering(self):
        trace = bursty_multitenant_trace(n_samples=10, n_requests=100, seed=0)
        assert len(trace) == 100
        times = [a.time for a in trace]
        assert times == sorted(times)

    def test_only_the_bronze_tenant_is_quota_capped(self):
        trace = bursty_multitenant_trace(n_samples=10, n_requests=100, seed=0)
        quotas = {a.tenant.name: a.tenant.quota for a in trace}
        assert quotas["hooli"] is not None
        assert quotas["acme"] is None and quotas["initech"] is None

    def test_seeded_determinism(self):
        a = bursty_multitenant_trace(n_samples=10, n_requests=100, seed=4)
        b = bursty_multitenant_trace(n_samples=10, n_requests=100, seed=4)
        assert a == b

    def test_scale_compresses_the_trace(self):
        slow = bursty_multitenant_trace(n_samples=10, n_requests=100, seed=0)
        fast = bursty_multitenant_trace(
            n_samples=10, n_requests=100, seed=0, scale=10.0
        )
        assert fast[-1].time < slow[-1].time
