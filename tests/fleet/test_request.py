"""Tenants, SLA tiers, and fleet request/response stamping."""

import pytest

from repro.fleet import SLA_TIERS, FleetRequest, FleetResponse, Tenant
from repro.graph import GraphSample


def _sample():
    import numpy as np

    return GraphSample(
        edge_index=np.zeros((2, 1), dtype=np.int64),
        x=np.zeros((2, 3), dtype=np.float32),
        y=0,
    )


class TestTenant:
    @pytest.mark.parametrize("tier,priority", sorted(SLA_TIERS.items()))
    def test_tier_priority(self, tier, priority):
        assert Tenant("t", tier=tier).priority == priority

    def test_gold_dispatches_before_bronze(self):
        assert Tenant("a", tier="gold").priority < Tenant("b", tier="bronze").priority

    def test_defaults_to_bronze(self):
        assert Tenant("t").tier == "bronze"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="SLA tier"):
            Tenant("t", tier="platinum")

    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_nonpositive_deadline_rejected(self, deadline):
        with pytest.raises(ValueError, match="deadline"):
            Tenant("t", deadline=deadline)

    @pytest.mark.parametrize("quota", [0, -3])
    def test_nonpositive_quota_rejected(self, quota):
        with pytest.raises(ValueError, match="quota"):
            Tenant("t", quota=quota)

    def test_frozen(self):
        tenant = Tenant("t")
        with pytest.raises(AttributeError):
            tenant.tier = "gold"


class TestFleetRequest:
    def test_inherits_tenant_priority(self):
        request = FleetRequest(
            request_id=0, sample=_sample(), arrival_time=0.0,
            tenant=Tenant("t", tier="gold"),
        )
        assert request.priority == SLA_TIERS["gold"]
        assert request.tenant_name == "t"

    def test_tenantless_request_is_bronze(self):
        request = FleetRequest(request_id=0, sample=_sample(), arrival_time=0.0)
        assert request.priority == SLA_TIERS["bronze"]
        assert request.tenant_name == ""

    def test_deadline_expiry_comes_from_base_request(self):
        request = FleetRequest(
            request_id=0, sample=_sample(), arrival_time=1.0, deadline=0.5,
            tenant=Tenant("t", deadline=0.5),
        )
        assert not request.expired(1.4)
        assert request.expired(1.6)

    def test_dispatch_counter_starts_at_zero(self):
        request = FleetRequest(request_id=0, sample=_sample(), arrival_time=0.0)
        assert request.dispatches == 0


class TestFleetResponse:
    def test_carries_serving_location(self):
        response = FleetResponse(
            request_id=3, prediction=1, arrival_time=0.0,
            dispatch_time=0.1, completion_time=0.2, batch_size=4,
            tenant="acme", replica=2,
        )
        assert response.tenant == "acme"
        assert response.replica == 2
        assert not response.cached
        assert response.latency == pytest.approx(0.2)

    def test_cache_hits_are_marked(self):
        response = FleetResponse(
            request_id=3, prediction=1, arrival_time=0.0,
            dispatch_time=0.0, completion_time=0.0, batch_size=1,
            tenant="acme", replica=-1, cached=True,
        )
        assert response.cached
        assert response.replica == -1
