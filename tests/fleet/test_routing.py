"""Routing policies: rotation, load scanning, seeded two-choice sampling,
and the routable-set filter (liveness + circuit breakers)."""

from dataclasses import dataclass, field

import pytest

from repro.fleet import (
    LeastLoaded,
    PowerOfTwoChoices,
    RoundRobin,
    make_policy,
    routable,
)
from repro.fleet.routing import POLICY_NAMES
from repro.serve.resilience import CircuitBreaker


@dataclass
class FakeReplica:
    """The slice of the replica surface routing actually touches."""

    id: int
    backlog: int = 0
    is_up: bool = True
    breaker: CircuitBreaker = field(
        default_factory=lambda: CircuitBreaker(failure_threshold=1, cooldown=0.1)
    )


@dataclass
class FakeRequest:
    request_id: int


def _fleet(*backlogs):
    return [FakeReplica(id=i, backlog=b) for i, b in enumerate(backlogs)]


class TestRoundRobin:
    def test_rotates_in_order(self):
        policy = RoundRobin()
        replicas = _fleet(0, 0, 0)
        picks = [policy.select(FakeRequest(i), replicas).id for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_ignores_load(self):
        policy = RoundRobin()
        replicas = _fleet(100, 0)
        assert policy.select(FakeRequest(0), replicas).id == 0


class TestLeastLoaded:
    def test_picks_smallest_backlog(self):
        policy = LeastLoaded()
        assert policy.select(FakeRequest(0), _fleet(5, 2, 9)).id == 1

    def test_ties_break_by_replica_id(self):
        policy = LeastLoaded()
        assert policy.select(FakeRequest(0), _fleet(3, 3, 3)).id == 0


class TestPowerOfTwoChoices:
    def test_same_seed_routes_identically(self):
        first, second = PowerOfTwoChoices(seed=7), PowerOfTwoChoices(seed=7)
        for policy in (first, second):
            replicas = _fleet(0, 0, 0, 0)
            for i in range(50):
                choice = policy.select(FakeRequest(i), replicas)
                choice.backlog += 1
        assert first.decisions == second.decisions

    def test_different_seeds_diverge(self):
        first, second = PowerOfTwoChoices(seed=0), PowerOfTwoChoices(seed=1)
        replicas = _fleet(*([0] * 8))
        for i in range(50):
            first.select(FakeRequest(i), replicas)
            second.select(FakeRequest(i), replicas)
        assert first.decisions != second.decisions

    def test_single_replica_degenerates(self):
        policy = PowerOfTwoChoices(seed=0)
        replicas = _fleet(4)
        assert policy.select(FakeRequest(0), replicas).id == 0

    def test_prefers_the_less_loaded_of_the_pair(self):
        policy = PowerOfTwoChoices(seed=0)
        # With two replicas the sampled pair is always {0, 1}.
        assert policy.select(FakeRequest(0), _fleet(9, 1)).id == 1
        assert policy.select(FakeRequest(1), _fleet(1, 9)).id == 0


class TestPolicyBase:
    def test_empty_routable_set_rejected(self):
        with pytest.raises(ValueError, match="no routable replicas"):
            RoundRobin().select(FakeRequest(0), [])

    def test_decisions_log_request_and_replica(self):
        policy = LeastLoaded()
        policy.select(FakeRequest(42), _fleet(0, 5))
        assert policy.decisions == [(42, 0)]

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_make_policy_names(self, name):
        assert make_policy(name).name == name

    def test_make_policy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("random")


class TestRoutable:
    def test_down_replicas_are_excluded(self):
        replicas = _fleet(0, 0)
        replicas[0].is_up = False
        assert [r.id for r in routable(replicas, now=0.0)] == [1]

    def test_open_breaker_within_cooldown_is_excluded(self):
        replicas = _fleet(0, 0)
        breaker = replicas[1].breaker
        breaker.record_failure(now=1.0)
        assert breaker.state == breaker.OPEN
        assert [r.id for r in routable(replicas, now=1.05)] == [0]

    def test_open_breaker_past_cooldown_is_routable_again(self):
        replicas = _fleet(0, 0)
        breaker = replicas[1].breaker
        breaker.record_failure(now=1.0)
        assert [r.id for r in routable(replicas, now=1.2)] == [0, 1]

    def test_routable_does_not_mutate_breaker_state(self):
        replicas = _fleet(0)
        breaker = replicas[0].breaker
        breaker.record_failure(now=1.0)
        routable(replicas, now=5.0)
        assert breaker.state == breaker.OPEN
