"""Accuracy comparison statistics."""

import numpy as np
import pytest

from repro.train.stats import AccuracyComparison, compare_accuracies


class TestCompareAccuracies:
    def test_identical_samples_indistinguishable(self):
        a = [0.8, 0.81, 0.79, 0.8]
        cmp = compare_accuracies(a, list(a))
        assert cmp.indistinguishable()
        assert cmp.mean_gap == pytest.approx(0.0)

    def test_clearly_different_samples(self):
        a = [0.9, 0.91, 0.89, 0.9]
        b = [0.5, 0.51, 0.49, 0.5]
        cmp = compare_accuracies(a, b)
        assert not cmp.indistinguishable()
        assert cmp.p_value < 0.01

    def test_noisy_similar_samples(self):
        a = [0.78, 0.80, 0.82, 0.79, 0.81]
        b = [0.79, 0.81, 0.78, 0.82, 0.80]  # same values, different order
        cmp = compare_accuracies(a, b)
        assert cmp.indistinguishable()

    def test_degenerate_single_sample(self):
        cmp = compare_accuracies([0.8], [0.8])
        assert cmp.p_value == 1.0
        cmp2 = compare_accuracies([0.8], [0.7])
        assert cmp2.p_value == 0.5

    def test_constant_samples_equal_and_unequal(self):
        equal = compare_accuracies([0.8, 0.8], [0.8, 0.8])
        assert equal.p_value == 1.0
        unequal = compare_accuracies([0.8, 0.8], [0.6, 0.6])
        assert unequal.p_value == 0.0

    def test_means_reported(self):
        cmp = compare_accuracies([0.6, 0.8], [0.7, 0.9])
        assert cmp.mean_a == pytest.approx(0.7)
        assert cmp.mean_b == pytest.approx(0.8)
        assert cmp.mean_gap == pytest.approx(0.1)

    def test_symmetry(self):
        a = [0.8, 0.82, 0.78]
        b = [0.75, 0.77, 0.73]
        ab = compare_accuracies(a, b)
        ba = compare_accuracies(b, a)
        assert ab.p_value == pytest.approx(ba.p_value)
