"""Fault-tolerant training: checkpoint/resume reproduces the fault-free run.

The acceptance bar for the fault subsystem: a run interrupted by injected
OOMs / kernel faults and resumed from its end-of-epoch snapshots must
produce a *bitwise identical* loss curve, accuracy curve and test accuracy
to the run that never faulted — on both framework packs, eager and
compiled.  Faults may only cost simulated time.
"""

import dataclasses

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.device import Device
from repro.faults import FaultPlan
from repro.train import GraphClassificationTrainer

MAX_EPOCHS = 4


@pytest.fixture(scope="module")
def dataset():
    return enzymes(seed=0, num_graphs=60)


@pytest.fixture(scope="module")
def splits(dataset):
    order = np.random.default_rng(0).permutation(len(dataset))
    return order[:40], order[40:50], order[50:]


def _trainer(framework, dataset, **kwargs):
    return GraphClassificationTrainer(
        framework, "gcn", dataset, batch_size=16,
        max_epochs=MAX_EPOCHS, device=Device(), **kwargs,
    )


def _curve(result):
    """The numerics a resumed run must reproduce exactly."""
    return [
        (r.epoch, r.train_loss, r.val_loss, r.val_acc) for r in result.epochs
    ] + [("test_acc", result.test_acc, None, None)]


class TestCheckpointResume:
    def test_run_state_written_after_every_epoch(self, dataset, splits, tmp_path):
        path = tmp_path / "state.npz"
        _trainer("pygx", dataset).run_fold(*splits, seed=0, state_path=path)
        assert path.exists()

    def test_resume_from_partial_run_matches_uninterrupted(
        self, dataset, splits, tmp_path
    ):
        """Stop after 2 epochs, resume for the rest: same curve bitwise."""
        path = tmp_path / "state.npz"
        full = _trainer("pygx", dataset).run_fold(*splits, seed=0)

        first = _trainer("pygx", dataset)
        first.max_epochs = 2
        first.run_fold(*splits, seed=0, state_path=path)
        resumed = _trainer("pygx", dataset).run_fold(
            *splits, seed=0, state_path=path, resume=True
        )
        assert _curve(resumed) == _curve(full)

    def test_resume_without_file_starts_fresh(self, dataset, splits, tmp_path):
        path = tmp_path / "missing.npz"
        result = _trainer("pygx", dataset).run_fold(
            *splits, seed=0, state_path=path, resume=True
        )
        assert len(result.epochs) == MAX_EPOCHS
        assert path.exists()


class TestFaultTolerantRun:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_faulted_run_bitwise_matches_fault_free(
        self, framework, dataset, splits, tmp_path
    ):
        baseline = _trainer(framework, dataset).run_fold(*splits, seed=0)

        plan = FaultPlan(seed=2, oom_rate=0.001, kernel_fault_rate=0.001)
        faulted = _trainer(framework, dataset).run_fold_fault_tolerant(
            *splits, seed=0, fault_plan=plan,
            state_path=tmp_path / "state.npz",
        )
        # The test only bites if faults actually interrupted the run.
        assert faulted.restarts > 0
        assert faulted.fault_stats.errors_injected >= faulted.restarts
        assert _curve(faulted.result) == _curve(baseline)

    def test_compiled_faulted_run_matches_eager_fault_free(
        self, dataset, splits, tmp_path
    ):
        """Compile fallback-on-fault parity: capture/replay under injected
        faults still reproduces the eager fault-free numerics exactly."""
        baseline = _trainer("pygx", dataset).run_fold(*splits, seed=0)
        plan = FaultPlan(seed=2, oom_rate=0.001, kernel_fault_rate=0.001)
        faulted = _trainer("pygx", dataset, compile=True).run_fold_fault_tolerant(
            *splits, seed=0, fault_plan=plan,
            state_path=tmp_path / "state.npz",
        )
        assert faulted.restarts > 0
        assert _curve(faulted.result) == _curve(baseline)

    def test_no_plan_still_checkpoints(self, dataset, splits, tmp_path):
        run = _trainer("pygx", dataset).run_fold_fault_tolerant(
            *splits, seed=0, state_path=tmp_path / "state.npz"
        )
        assert run.restarts == 0
        assert run.fault_stats is None
        assert len(run.result.epochs) == MAX_EPOCHS

    def test_state_path_required(self, dataset, splits):
        with pytest.raises(ValueError, match="state_path"):
            _trainer("pygx", dataset).run_fold_fault_tolerant(*splits, seed=0)

    def test_restart_budget_enforced(self, dataset, splits, tmp_path):
        """An unrecoverable fault storm eventually surfaces the error."""
        from repro.faults import FaultError
        from repro.device import OutOfMemoryError

        plan = FaultPlan(seed=0, kernel_fault_rate=0.5)
        with pytest.raises((FaultError, OutOfMemoryError)):
            _trainer("pygx", dataset).run_fold_fault_tolerant(
                *splits, seed=0, fault_plan=plan,
                state_path=tmp_path / "state.npz", max_restarts=2,
            )

    def test_two_faulted_invocations_identical(self, dataset, splits, tmp_path):
        """Same plan, same seed, same workload: same run, same scars."""
        plan = FaultPlan(seed=2, oom_rate=0.001, kernel_fault_rate=0.001)
        runs = []
        for tag in ("a", "b"):
            run = _trainer("pygx", dataset).run_fold_fault_tolerant(
                *splits, seed=0, fault_plan=plan,
                state_path=tmp_path / f"state_{tag}.npz",
            )
            runs.append(run)
        assert runs[0].restarts == runs[1].restarts
        assert dataclasses.asdict(runs[0].fault_stats) == dataclasses.asdict(
            runs[1].fault_stats
        )
        assert _curve(runs[0].result) == _curve(runs[1].result)
