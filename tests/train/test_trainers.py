"""Training harnesses: protocols, phase accounting, stopping rules."""

import numpy as np
import pytest

from repro.datasets import enzymes, kfold_splits, load_dataset
from repro.models import graph_config
from repro.train import (
    GraphClassificationTrainer,
    NodeClassificationTrainer,
    multi_gpu_epoch_time,
)


@pytest.fixture(scope="module")
def small_enzymes():
    return enzymes(seed=0, num_graphs=48)


@pytest.fixture(scope="module")
def cora_small():
    return load_dataset("cora")


class TestNodeTrainer:
    def test_runs_and_reports(self, cora_small):
        trainer = NodeClassificationTrainer("pygx", "gcn", cora_small, max_epochs=5)
        result = trainer.run(seed=0)
        assert result.n_epochs == 5
        assert 0.0 <= result.test_acc <= 1.0
        assert result.mean_epoch_time > 0
        assert result.mean_full_epoch_time > result.mean_epoch_time
        assert result.peak_memory > 0

    def test_learns_above_chance(self, cora_small):
        trainer = NodeClassificationTrainer("pygx", "gcn", cora_small, max_epochs=30)
        result = trainer.run(seed=0)
        assert result.test_acc > 2.0 / 7.0  # well above the 1/7 chance level

    def test_loss_decreases(self, cora_small):
        trainer = NodeClassificationTrainer("pygx", "gcn", cora_small, max_epochs=20)
        result = trainer.run(seed=0)
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss

    def test_epoch_has_no_data_loading_phase(self, cora_small):
        """Full-batch training loads the graph once, before epoch timing."""
        trainer = NodeClassificationTrainer("dglx", "gcn", cora_small, max_epochs=2)
        result = trainer.run(seed=0)
        for record in result.epochs:
            assert record.phase_times.get("data_loading", 0.0) == 0.0

    def test_run_seeds_aggregates(self, cora_small):
        trainer = NodeClassificationTrainer("pygx", "gcn", cora_small, max_epochs=2)
        agg = trainer.run_seeds(seeds=(0, 1))
        assert len(agg.runs) == 2
        assert agg.dataset == "Cora"
        assert agg.acc_std >= 0

    def test_unknown_framework(self, cora_small):
        with pytest.raises(ValueError):
            NodeClassificationTrainer("jax", "gcn", cora_small)


class TestGraphTrainer:
    def test_fold_runs(self, small_enzymes):
        splits = kfold_splits(small_enzymes.labels, 4, np.random.default_rng(0))
        trainer = GraphClassificationTrainer(
            "pygx", "gcn", small_enzymes, batch_size=16, max_epochs=3
        )
        result = trainer.run_fold(*splits[0], seed=0)
        assert result.n_epochs == 3
        assert set(result.epochs[0].phase_times) >= {"data_loading", "forward", "backward", "update"}

    def test_stops_when_lr_decays_to_min(self, small_enzymes):
        splits = kfold_splits(small_enzymes.labels, 4, np.random.default_rng(0))
        cfg = graph_config(
            "gcn",
            in_dim=small_enzymes.num_features,
            n_classes=small_enzymes.num_classes,
            lr_patience=0,
            min_lr=0.5e-3,
            lr=1e-3,
        )
        trainer = GraphClassificationTrainer(
            "pygx", "gcn", small_enzymes, batch_size=16, max_epochs=50, config=cfg
        )
        result = trainer.run_fold(*splits[0], seed=0)
        # patience 0: lr halves as soon as val loss fails to improve, and
        # training must stop well before the epoch cap.
        assert result.n_epochs < 50

    def test_cross_validate_max_folds(self, small_enzymes):
        trainer = GraphClassificationTrainer(
            "pygx", "gcn", small_enzymes, batch_size=16, max_epochs=2
        )
        agg = trainer.cross_validate(n_folds=4, max_folds=2)
        assert len(agg.runs) == 2
        assert agg.epoch_time > 0

    def test_measure_epoch_phases(self, small_enzymes):
        trainer = GraphClassificationTrainer(
            "dglx", "gin", small_enzymes, batch_size=16
        )
        result = trainer.measure_epoch(n_epochs=2)
        phases = result.mean_phase_times()
        assert phases["data_loading"] > 0
        assert phases["forward"] > 0
        assert phases["backward"] > 0
        assert phases["update"] > 0

    def test_both_frameworks_train_same_protocol(self, small_enzymes):
        splits = kfold_splits(small_enzymes.labels, 4, np.random.default_rng(0))
        for fw in ("pygx", "dglx"):
            trainer = GraphClassificationTrainer(
                fw, "sage", small_enzymes, batch_size=16, max_epochs=2
            )
            result = trainer.run_fold(*splits[0], seed=0)
            assert result.n_epochs == 2

    def test_invalid_framework(self, small_enzymes):
        with pytest.raises(ValueError):
            GraphClassificationTrainer("tf", "gcn", small_enzymes)


class TestMultiGPU:
    @pytest.fixture(scope="class")
    def mnist(self):
        return load_dataset("mnist", num_graphs=60)

    def test_epoch_time_positive(self, mnist):
        t = multi_gpu_epoch_time("pygx", "gcn", mnist, batch_size=20, n_gpus=1, max_batches=2)
        assert t > 0

    def test_compute_shrinks_with_more_gpus(self, mnist):
        t1 = multi_gpu_epoch_time("pygx", "gat", mnist, batch_size=20, n_gpus=1, max_batches=2)
        t2 = multi_gpu_epoch_time("pygx", "gat", mnist, batch_size=20, n_gpus=2, max_batches=2)
        # 2 GPUs must not double the time; typically a mild improvement
        assert t2 < t1 * 1.2

    def test_eight_gpus_not_faster_than_four(self, mnist):
        t4 = multi_gpu_epoch_time("pygx", "gcn", mnist, batch_size=40, n_gpus=4, max_batches=1)
        t8 = multi_gpu_epoch_time("pygx", "gcn", mnist, batch_size=40, n_gpus=8, max_batches=1)
        assert t8 > t4 * 0.8  # transfer overhead eats the compute gains

    def test_validates_arguments(self, mnist):
        with pytest.raises(ValueError):
            multi_gpu_epoch_time("pygx", "gcn", mnist, batch_size=4, n_gpus=8)
        with pytest.raises(ValueError):
            multi_gpu_epoch_time("pygx", "gcn", mnist, batch_size=8, n_gpus=0)
        with pytest.raises(ValueError):
            multi_gpu_epoch_time("mxnet", "gcn", mnist, batch_size=8, n_gpus=1)
