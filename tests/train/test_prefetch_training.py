"""Prefetch-pipelined training: bitwise parity with serial, faster epochs."""

import pytest

from repro.datasets import enzymes
from repro.device import Device
from repro.train import GraphClassificationTrainer


@pytest.fixture(scope="module")
def dataset():
    return enzymes(seed=0, num_graphs=96)


def _measure(framework, dataset, prefetch, compiled=False, model="gcn"):
    trainer = GraphClassificationTrainer(
        framework, model, dataset, batch_size=8, device=Device(),
        compile=compiled, prefetch=prefetch,
    )
    return trainer.measure_epoch(n_epochs=2, seed=0)


class TestPrefetchParity:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("compiled", [False, True])
    def test_losses_and_accuracy_bitwise_identical(self, dataset, framework, compiled):
        serial = _measure(framework, dataset, prefetch=False, compiled=compiled)
        overlapped = _measure(framework, dataset, prefetch=True, compiled=compiled)
        assert [e.train_loss for e in serial.epochs] == [
            e.train_loss for e in overlapped.epochs
        ]
        assert [e.val_loss for e in serial.epochs] == [
            e.val_loss for e in overlapped.epochs
        ]
        assert serial.test_acc == overlapped.test_acc

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_prefetch_is_faster_and_raises_utilisation(self, dataset, framework):
        serial = _measure(framework, dataset, prefetch=False)
        overlapped = _measure(framework, dataset, prefetch=True)
        assert overlapped.mean_epoch_time < serial.mean_epoch_time
        assert overlapped.gpu_utilization > serial.gpu_utilization

    def test_unhidden_loading_shrinks_in_breakdown(self, dataset):
        serial = _measure("dglx", dataset, prefetch=False)
        overlapped = _measure("dglx", dataset, prefetch=True)
        assert (overlapped.mean_phase_times().get("data_loading", 0.0)
                < serial.mean_phase_times().get("data_loading", 0.0))


class TestPrefetchConvergesToProjection:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_executed_epoch_near_projection(self, dataset, framework):
        from repro.bench import project_overlap

        serial = _measure(framework, dataset, prefetch=False)
        overlapped = _measure(framework, dataset, prefetch=True)
        projected = project_overlap(serial).overlapped_epoch
        assert overlapped.mean_epoch_time == pytest.approx(projected, rel=0.10)
