"""Checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import graph_config
from repro.pygx import Batch, Data, build_model
from repro.tensor import no_grad
from repro.train import (
    checkpoint_name,
    checkpoint_nbytes,
    load_checkpoint,
    load_model,
    save_checkpoint,
)


@pytest.fixture()
def model():
    cfg = graph_config("gcn", in_dim=18, n_classes=6)
    return build_model(cfg, np.random.default_rng(0))


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        other = build_model(model.config, np.random.default_rng(99))
        assert not np.allclose(other.conv1.linear.weight.data, model.conv1.linear.weight.data)
        load_checkpoint(other, path)
        np.testing.assert_array_equal(
            other.conv1.linear.weight.data, model.conv1.linear.weight.data
        )

    def test_roundtrip_restores_buffers(self, tmp_path):
        cfg = graph_config("gin", in_dim=18, n_classes=6)
        net = build_model(cfg, np.random.default_rng(0))
        net.conv1.bn.running_mean[:] = 7.0
        path = tmp_path / "gin.npz"
        save_checkpoint(net, path)
        other = build_model(cfg, np.random.default_rng(1))
        load_checkpoint(other, path)
        np.testing.assert_allclose(other.conv1.bn.running_mean, 7.0)

    def test_restored_model_same_outputs(self, model, tmp_path):
        ds = enzymes(seed=0, num_graphs=8)
        batch = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
        path = tmp_path / "m.npz"
        save_checkpoint(model, path)
        other = build_model(model.config, np.random.default_rng(5))
        load_checkpoint(other, path)
        model.eval()
        other.eval()
        np.testing.assert_allclose(model(batch).data, other(batch).data, atol=1e-6)

    def test_checkpoint_nbytes_matches_state(self, model):
        assert checkpoint_nbytes(model) == sum(
            a.nbytes for a in model.state_dict().values()
        )

    def test_mismatched_architecture_rejected(self, model, tmp_path):
        path = tmp_path / "m.npz"
        save_checkpoint(model, path)
        other_cfg = graph_config("gcn", in_dim=18, n_classes=6, hidden=64)
        other = build_model(other_cfg, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)


def _build(framework, config, seed):
    if framework == "pygx":
        from repro.pygx import build_model as build
    else:
        from repro.dglx import build_model as build
    return build(config, np.random.default_rng(seed))


def _fixed_batch(framework, n=8):
    graphs = enzymes(seed=0, num_graphs=n).graphs
    if framework == "pygx":
        return Batch.from_data_list([Data.from_sample(g) for g in graphs])
    from repro.dglx import batch as dgl_batch

    return dgl_batch(graphs)


class TestCheckpointAcrossFrameworks:
    """Save -> load -> identical predictions, for GCN and GAT in both packs."""

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    @pytest.mark.parametrize("model_name", ["gcn", "gat"])
    def test_roundtrip_identical_predictions(self, framework, model_name, tmp_path):
        config = graph_config(model_name, in_dim=18, n_classes=6)
        source = _build(framework, config, seed=0)
        path = tmp_path / checkpoint_name(framework, model_name, "enzymes")
        save_checkpoint(source, path)

        restored = load_model(framework, config, path)
        source.eval()
        restored.eval()
        inputs = _fixed_batch(framework)
        with no_grad():
            expected = source(inputs).data
            actual = restored(_fixed_batch(framework)).data
        np.testing.assert_array_equal(actual, expected)
        np.testing.assert_array_equal(
            np.argmax(actual, axis=1), np.argmax(expected, axis=1)
        )

    def test_load_model_rejects_unknown_framework(self, tmp_path):
        config = graph_config("gcn", in_dim=18, n_classes=6)
        path = tmp_path / "m.npz"
        save_checkpoint(_build("pygx", config, seed=0), path)
        with pytest.raises(ValueError, match="framework"):
            load_model("torch", config, path)

    def test_checkpoint_name_is_canonical(self):
        assert checkpoint_name("pygx", "gat", "enzymes") == "pygx_gat_enzymes.npz"
