"""Checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import graph_config
from repro.pygx import Batch, Data, build_model
from repro.train import checkpoint_nbytes, load_checkpoint, save_checkpoint


@pytest.fixture()
def model():
    cfg = graph_config("gcn", in_dim=18, n_classes=6)
    return build_model(cfg, np.random.default_rng(0))


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        other = build_model(model.config, np.random.default_rng(99))
        assert not np.allclose(other.conv1.linear.weight.data, model.conv1.linear.weight.data)
        load_checkpoint(other, path)
        np.testing.assert_array_equal(
            other.conv1.linear.weight.data, model.conv1.linear.weight.data
        )

    def test_roundtrip_restores_buffers(self, tmp_path):
        cfg = graph_config("gin", in_dim=18, n_classes=6)
        net = build_model(cfg, np.random.default_rng(0))
        net.conv1.bn.running_mean[:] = 7.0
        path = tmp_path / "gin.npz"
        save_checkpoint(net, path)
        other = build_model(cfg, np.random.default_rng(1))
        load_checkpoint(other, path)
        np.testing.assert_allclose(other.conv1.bn.running_mean, 7.0)

    def test_restored_model_same_outputs(self, model, tmp_path):
        ds = enzymes(seed=0, num_graphs=8)
        batch = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
        path = tmp_path / "m.npz"
        save_checkpoint(model, path)
        other = build_model(model.config, np.random.default_rng(5))
        load_checkpoint(other, path)
        model.eval()
        other.eval()
        np.testing.assert_allclose(model(batch).data, other(batch).data, atol=1e-6)

    def test_checkpoint_nbytes_matches_state(self, model):
        assert checkpoint_nbytes(model) == sum(
            a.nbytes for a in model.state_dict().values()
        )

    def test_mismatched_architecture_rejected(self, model, tmp_path):
        path = tmp_path / "m.npz"
        save_checkpoint(model, path)
        other_cfg = graph_config("gcn", in_dim=18, n_classes=6, hidden=64)
        other = build_model(other_cfg, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)
