"""Determinism guarantees: same seed, same everything."""

import numpy as np
import pytest

from repro.datasets import enzymes, load_dataset
from repro.train import GraphClassificationTrainer, NodeClassificationTrainer


class TestNodeTrainerDeterminism:
    def test_same_seed_same_result(self):
        ds = load_dataset("cora")
        results = []
        for _ in range(2):
            trainer = NodeClassificationTrainer("pygx", "gcn", ds, max_epochs=3)
            results.append(trainer.run(seed=7))
        a, b = results
        assert a.test_acc == b.test_acc
        assert a.epochs[-1].train_loss == pytest.approx(b.epochs[-1].train_loss)
        assert a.mean_epoch_time == pytest.approx(b.mean_epoch_time, rel=1e-9)

    def test_different_seeds_differ(self):
        ds = load_dataset("cora")
        trainer = NodeClassificationTrainer("pygx", "gat", ds, max_epochs=3)
        a = trainer.run(seed=0)
        b = trainer.run(seed=1)
        assert a.epochs[-1].train_loss != b.epochs[-1].train_loss


class TestGraphTrainerDeterminism:
    def test_same_seed_same_fold_result(self):
        ds = enzymes(seed=0, num_graphs=36)
        idx = np.arange(36)
        runs = []
        for _ in range(2):
            trainer = GraphClassificationTrainer(
                "dglx", "gin", ds, batch_size=12, max_epochs=2
            )
            runs.append(trainer.run_fold(idx[:24], idx[24:30], idx[30:], seed=3))
        assert runs[0].test_acc == runs[1].test_acc
        assert runs[0].epochs[0].train_loss == pytest.approx(runs[1].epochs[0].train_loss)

    def test_simulated_times_independent_of_wall_clock(self):
        """Two identical runs must report identical simulated times."""
        ds = enzymes(seed=0, num_graphs=24)
        idx = np.arange(24)
        times = []
        for _ in range(2):
            trainer = GraphClassificationTrainer(
                "pygx", "gcn", ds, batch_size=8, max_epochs=1
            )
            run = trainer.run_fold(idx[:16], idx[16:20], idx[20:], seed=0)
            times.append(run.mean_epoch_time)
        assert times[0] == pytest.approx(times[1], rel=1e-12)
