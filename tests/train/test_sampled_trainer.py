"""SampledNodeTrainer: determinism, phase breakdown, stack composition."""

import numpy as np
import pytest

from repro.scale import full_graph_training_memory_floor, make_scale_dataset
from repro.train import SampledNodeTrainer


@pytest.fixture(scope="module")
def dataset():
    return make_scale_dataset(
        1200, avg_degree=6.0, n_classes=4, n_features=16, seed=0,
        self_loops=True,
    )


def make_trainer(dataset, framework="pygx", model="gcn", **kwargs):
    kwargs.setdefault("fanouts", (5, 5))
    kwargs.setdefault("batch_size", 64)
    kwargs.setdefault("max_epochs", 2)
    return SampledNodeTrainer(framework, model, dataset, **kwargs)


class TestRun:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_trains_and_reports(self, dataset, framework):
        result = make_trainer(dataset, framework).run(seed=0)
        assert len(result.epochs) == 2
        assert 0.0 <= result.test_acc <= 1.0
        assert result.peak_memory > 0
        assert result.total_time > 0

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_deterministic(self, dataset, framework):
        a = make_trainer(dataset, framework).run(seed=3)
        b = make_trainer(dataset, framework).run(seed=3)
        assert a.test_acc == b.test_acc
        for ea, eb in zip(a.epochs, b.epochs):
            assert ea.train_loss == eb.train_loss
            assert ea.val_acc == eb.val_acc

    def test_seed_changes_run(self, dataset):
        a = make_trainer(dataset).run(seed=0)
        b = make_trainer(dataset).run(seed=1)
        assert a.epochs[0].train_loss != b.epochs[0].train_loss

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_sampling_phase_reported(self, dataset, framework):
        result = make_trainer(dataset, framework).run(seed=0)
        phases = result.epochs[0].phase_times
        # The large-graph breakdown: sampler time is attributed apart
        # from collation/H2D and the compute phases.
        assert phases.get("sampling", 0.0) > 0.0
        assert phases.get("data_loading", 0.0) > 0.0
        assert phases.get("forward", 0.0) > 0.0

    def test_max_batches_trims_epoch(self, dataset):
        full = make_trainer(dataset, max_epochs=1).run(seed=0)
        trimmed = make_trainer(dataset, max_epochs=1, max_batches=1).run(seed=0)
        assert trimmed.epochs[0].train_time < full.epochs[0].train_time

    def test_peak_memory_below_full_graph_floor(self, dataset):
        trainer = make_trainer(dataset)
        result = trainer.run(seed=0)
        floor = full_graph_training_memory_floor(
            dataset.graph.num_nodes, dataset.graph.num_edges, trainer.config
        )
        assert result.peak_memory < floor

    def test_sampled_accuracy_helper(self, dataset):
        trainer = make_trainer(dataset, max_epochs=3)
        trainer.run(seed=0)
        acc = trainer.sampled_accuracy(trainer.final_model, dataset.test_idx)
        assert 0.0 <= acc <= 1.0


class TestStackComposition:
    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_compile_replays_and_matches_eager(self, dataset, framework):
        eager = make_trainer(dataset, framework).run(seed=0)
        trainer = make_trainer(dataset, framework, compile=True)
        compiled = trainer.run(seed=0)
        stats = trainer.compiled_step.stats
        # Sampled batches vary in node count; structural-signature
        # bucketing must still replay rather than recapture every step.
        assert stats.replays > 0
        assert compiled.test_acc == eager.test_acc
        for ea, eb in zip(eager.epochs, compiled.epochs):
            assert ea.train_loss == pytest.approx(eb.train_loss, rel=1e-6)

    @pytest.mark.parametrize("framework", ["pygx", "dglx"])
    def test_prefetch_preserves_numerics(self, dataset, framework):
        serial = make_trainer(dataset, framework).run(seed=0)
        piped = make_trainer(dataset, framework, prefetch=True).run(seed=0)
        assert piped.test_acc == serial.test_acc
        for ea, eb in zip(serial.epochs, piped.epochs):
            assert ea.train_loss == eb.train_loss

    def test_full_graph_norm_flags_flow_to_loader(self, dataset):
        trainer = make_trainer(dataset, ensure_self_loops=True,
                               full_graph_norm=True)
        loader = trainer._loader(dataset.train_idx, 32, shuffle=False,
                                 rng=0, prefetch=False)
        assert loader.ensure_self_loops and loader.full_graph_norm
        result = trainer.run(seed=0)
        assert 0.0 <= result.test_acc <= 1.0


class TestValidation:
    def test_unknown_framework(self, dataset):
        with pytest.raises(ValueError):
            SampledNodeTrainer("tf", "gcn", dataset)

    def test_fanout_depth_mismatch(self, dataset):
        from repro.models import node_config

        config = node_config("gcn", in_dim=dataset.num_features,
                             n_classes=dataset.num_classes, n_layers=3)
        with pytest.raises(ValueError):
            SampledNodeTrainer("pygx", "gcn", dataset, fanouts=(5, 5),
                               config=config)
