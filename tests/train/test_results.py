"""Result record aggregation logic."""

import pytest

from repro.train.results import EpochRecord, ExperimentResult, RunResult


def record(epoch, train=0.1, eval_=0.05, phases=None, loss=1.0):
    return EpochRecord(
        epoch=epoch,
        train_time=train,
        eval_time=eval_,
        phase_times=phases or {"forward": train / 2, "backward": train / 2},
        train_loss=loss,
        val_loss=loss,
        val_acc=0.5,
    )


class TestRunResult:
    def test_mean_epoch_time(self):
        run = RunResult(test_acc=0.5, epochs=[record(0, 0.1), record(1, 0.3)])
        assert run.mean_epoch_time == pytest.approx(0.2)

    def test_mean_full_epoch_includes_eval(self):
        run = RunResult(test_acc=0.5, epochs=[record(0, 0.1, 0.05)])
        assert run.mean_full_epoch_time == pytest.approx(0.15)

    def test_empty_run_is_zero(self):
        run = RunResult(test_acc=0.0)
        assert run.mean_epoch_time == 0.0
        assert run.mean_full_epoch_time == 0.0
        assert run.mean_phase_times() == {}

    def test_mean_phase_times_union_of_keys(self):
        run = RunResult(
            test_acc=0.5,
            epochs=[
                record(0, phases={"forward": 1.0}),
                record(1, phases={"backward": 2.0}),
            ],
        )
        phases = run.mean_phase_times()
        assert phases["forward"] == pytest.approx(0.5)
        assert phases["backward"] == pytest.approx(1.0)

    def test_n_epochs(self):
        assert RunResult(test_acc=0.1, epochs=[record(0)]).n_epochs == 1


class TestExperimentResult:
    def test_format_row_contains_fields(self):
        result = ExperimentResult(
            framework="pygx",
            model="gcn",
            dataset="Cora",
            acc_mean=0.81,
            acc_std=0.013,
            epoch_time=0.0049,
            total_time=5.82,
        )
        row = result.format_row()
        assert "Cora" in row and "gcn" in row and "pygx" in row
        assert "81.0" in row
