"""fp16 roofline mode through the trainers.

docs/kernels.md's numerics policy: ``precision="fp16"`` halves tensor
bytes (launches, transfers, tracked memory) and nothing else — losses,
gradients and accuracies stay bitwise-identical to fp32 while epochs get
faster and peak memory drops by about half.
"""

import numpy as np
import pytest

from repro.datasets import enzymes, load_dataset
from repro.device import PRECISION_BYTE_SCALE, Device, use_device
from repro.tensor import Tensor
from repro.train import GraphClassificationTrainer, NodeClassificationTrainer


def _graph_runs(model_name, framework, precisions=("fp32", "fp16")):
    runs = {}
    for precision in precisions:
        trainer = GraphClassificationTrainer(
            framework,
            model_name,
            enzymes(seed=0, num_graphs=16),
            batch_size=8,
            precision=precision,
        )
        runs[precision] = trainer.measure_epoch(n_epochs=2, seed=0)
    return runs["fp32"], runs["fp16"]


class TestGraphTrainerParity:
    @pytest.mark.parametrize(
        "framework,model_name",
        [("pygx", "gcn"), ("dglx", "gcn"), ("pygx", "gat"), ("dglx", "gat")],
    )
    def test_losses_bitwise_identical(self, framework, model_name):
        f32, f16 = _graph_runs(model_name, framework)
        assert [e.train_loss for e in f16.epochs] == [
            e.train_loss for e in f32.epochs
        ]
        assert f16.test_acc == f32.test_acc

    def test_fp16_is_faster_with_half_the_memory(self):
        f32, f16 = _graph_runs("gcn", "dglx")
        assert f16.mean_epoch_time < f32.mean_epoch_time
        # Tensor payloads ship half-width; only non-launch bookkeeping
        # keeps the ratio from being exactly 0.5.
        assert 0.4 < f16.peak_memory / f32.peak_memory < 0.6


class TestNodeTrainerParity:
    @pytest.mark.parametrize("model_name", ("gcn", "gat"))
    def test_cora_losses_and_accuracy_identical(self, model_name):
        results = {}
        for precision in ("fp32", "fp16"):
            trainer = NodeClassificationTrainer(
                "dglx",
                model_name,
                load_dataset("cora"),
                max_epochs=3,
                precision=precision,
            )
            results[precision] = trainer.run(seed=0)
        f32, f16 = results["fp32"], results["fp16"]
        assert [e.train_loss for e in f16.epochs] == [
            e.train_loss for e in f32.epochs
        ]
        assert f16.test_acc == f32.test_acc
        assert f16.total_time < f32.total_time


class TestDeviceByteScaling:
    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            Device(precision="bf16")

    def test_trainer_adopts_explicit_device_precision(self):
        device = Device(precision="fp16")
        trainer = GraphClassificationTrainer(
            "pygx", "gcn", enzymes(seed=0, num_graphs=8), device=device
        )
        assert trainer.precision == "fp16"

    def test_launch_bytes_scaled_by_half(self, rng):
        records = {}
        for precision in ("fp32", "fp16"):
            device = Device(precision=precision)
            device.profiler.enabled = True
            with use_device(device):
                x = Tensor(rng.normal(size=(64, 64)).astype(np.float32))
                (x * x).sum()
            records[precision] = device.profiler.records
        scale = PRECISION_BYTE_SCALE["fp16"]
        assert scale == 0.5
        for r32, r16 in zip(records["fp32"], records["fp16"]):
            assert r16.name == r32.name
            assert r16.flops == r32.flops  # compute is not scaled
            assert r16.bytes_moved == pytest.approx(r32.bytes_moved * scale)
