"""CachedDataLoader: collate-once semantics and cost behaviour."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.device import current_device
from repro.pygx.cached_loader import CachedDataLoader


@pytest.fixture()
def graphs():
    return enzymes(seed=0, num_graphs=24).graphs


class TestCachedLoader:
    def test_same_batches_every_epoch(self, graphs):
        loader = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        first = [b.y.copy() for b in loader]
        second = [b.y.copy() for b in loader]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_replay_reuses_objects(self, graphs):
        loader = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        first = list(loader)
        second = list(loader)
        assert all(a is b for a, b in zip(first, second))

    def test_second_epoch_much_cheaper(self, graphs, fresh_device):
        loader = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        clock = fresh_device.clock
        t0 = clock.elapsed
        list(loader)
        first_epoch = clock.elapsed - t0
        t0 = clock.elapsed
        list(loader)
        second_epoch = clock.elapsed - t0
        assert second_epoch < 0.1 * first_epoch

    def test_len(self, graphs):
        assert len(CachedDataLoader(graphs, batch_size=10)) == 3

    def test_cached_bytes_after_fill(self, graphs):
        loader = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        assert loader.cached_bytes() == 0
        list(loader)
        assert loader.cached_bytes() > 0

    def test_cached_bytes_sums_batch_buffers(self, graphs):
        loader = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        batches = list(loader)
        expected = sum(b.x.nbytes + b.edge_index.nbytes for b in batches)
        assert loader.cached_bytes() == expected

    def test_cached_bytes_grows_during_fill_then_stays(self, graphs):
        loader = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        sizes = []
        for _ in loader:
            sizes.append(loader.cached_bytes())
        assert sizes == sorted(sizes) and sizes[0] > 0
        filled = loader.cached_bytes()
        list(loader)  # replay epoch: cache unchanged
        assert loader.cached_bytes() == filled

    def test_cached_bytes_scales_with_batch_count(self, graphs):
        small = CachedDataLoader(graphs[:8], batch_size=8, rng=np.random.default_rng(0))
        large = CachedDataLoader(graphs, batch_size=8, rng=np.random.default_rng(0))
        list(small)
        list(large)
        assert large.cached_bytes() > small.cached_bytes()

    def test_invalid_batch_size(self, graphs):
        with pytest.raises(ValueError):
            CachedDataLoader(graphs, batch_size=0)


class TestOverlapProjection:
    def test_projection_math(self):
        from repro.bench.overlap import project_overlap
        from repro.train.results import EpochRecord, RunResult

        run = RunResult(
            test_acc=0.5,
            epochs=[
                EpochRecord(
                    epoch=0,
                    train_time=1.0,
                    eval_time=0.0,
                    phase_times={"data_loading": 0.6, "forward": 0.4},
                    train_loss=1.0,
                    val_loss=1.0,
                    val_acc=0.5,
                )
            ],
        )
        proj = project_overlap(run)
        assert proj.serial_epoch == pytest.approx(1.0)
        assert proj.overlapped_epoch == pytest.approx(0.6)
        assert proj.speedup == pytest.approx(1.0 / 0.6)

    @staticmethod
    def _run(train_time, phases):
        from repro.train.results import EpochRecord, RunResult

        return RunResult(
            test_acc=0.5,
            epochs=[
                EpochRecord(
                    epoch=0,
                    train_time=train_time,
                    eval_time=0.0,
                    phase_times=phases,
                    train_loss=1.0,
                    val_loss=1.0,
                    val_acc=0.5,
                )
            ],
        )

    def test_zero_device_time_epoch_is_pure_loading(self):
        """All loading, nothing to hide behind: overlap buys nothing."""
        from repro.bench.overlap import project_overlap

        proj = project_overlap(self._run(0.7, {"data_loading": 0.7}))
        assert proj.overlapped_epoch == pytest.approx(0.7)
        assert proj.speedup == pytest.approx(1.0)

    def test_loading_dominated_epoch_bounded_by_loading(self):
        from repro.bench.overlap import project_overlap

        proj = project_overlap(
            self._run(1.0, {"data_loading": 0.9, "forward": 0.1})
        )
        assert proj.overlapped_epoch == pytest.approx(0.9)
        assert proj.speedup == pytest.approx(1.0 / 0.9)

    def test_no_loading_epoch_unchanged(self):
        from repro.bench.overlap import project_overlap

        proj = project_overlap(self._run(1.0, {"forward": 1.0}))
        assert proj.overlapped_epoch == pytest.approx(1.0)
        assert proj.speedup == pytest.approx(1.0)

    def test_zero_epoch_degenerate_speedup_is_one(self):
        from repro.bench.overlap import project_overlap

        proj = project_overlap(self._run(0.0, {}))
        assert proj.overlapped_epoch == 0.0
        assert proj.speedup == 1.0
