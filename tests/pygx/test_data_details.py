"""Data object details and loader coverage guarantees."""

import numpy as np
import pytest

from repro.graph import GraphSample
from repro.pygx import Batch, Data, DataLoader


def sample(n=3, label=0, with_pos=False, seed=0):
    rng = np.random.default_rng(seed)
    ring = np.arange(n)
    pos = rng.random((n, 2)).astype(np.float32) if with_pos else None
    return GraphSample(
        np.stack([ring, np.roll(ring, -1)]),
        rng.normal(size=(n, 2)).astype(np.float32),
        label,
        pos=pos,
    )


class TestData:
    def test_from_sample_copies_fields(self):
        g = sample(4, label=2, with_pos=True)
        d = Data.from_sample(g)
        assert d.num_nodes == 4
        assert d.num_edges == 4
        assert d.y == 2
        assert d.pos is not None

    def test_pos_defaults_none(self):
        assert Data.from_sample(sample()).pos is None

    def test_dtype_normalisation(self):
        d = Data(np.ones((2, 2), np.float64), np.zeros((2, 0), np.int32), 0)
        assert d.x.dtype == np.float32
        assert d.edge_index.dtype == np.int64


class TestBatchPos:
    def test_pos_none_if_any_graph_missing(self):
        with_pos = Data.from_sample(sample(with_pos=True))
        without = Data.from_sample(sample())
        batch = Batch.from_data_list([with_pos, without])
        assert batch.pos is None

    def test_pos_present_when_all_have_it(self):
        graphs = [Data.from_sample(sample(with_pos=True, seed=i)) for i in range(3)]
        batch = Batch.from_data_list(graphs)
        assert batch.pos is not None
        assert batch.pos.shape == (9, 2)


class TestLoaderCoverage:
    def test_every_graph_seen_exactly_once(self):
        graphs = [sample(label=i, seed=i) for i in range(17)]
        loader = DataLoader(graphs, batch_size=5, shuffle=True, rng=np.random.default_rng(0))
        seen = np.concatenate([b.y for b in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(17))

    def test_drop_last_skips_remainder_only(self):
        graphs = [sample(label=i, seed=i) for i in range(17)]
        loader = DataLoader(graphs, batch_size=5, drop_last=True)
        seen = np.concatenate([b.y for b in loader])
        assert len(seen) == 15
