"""PyG-style framework: Data/Batch collation, loader, message passing."""

import numpy as np
import pytest

from repro.graph import GraphSample
from repro.pygx import (
    Batch,
    Data,
    DataLoader,
    MessagePassing,
    edge_softmax,
    global_add_pool,
    global_max_pool,
    global_mean_pool,
)
from repro.tensor import Tensor


def sample(n_nodes=3, label=0, seed=0):
    rng = np.random.default_rng(seed)
    ring = np.arange(n_nodes)
    edge_index = np.stack([ring, np.roll(ring, -1)])
    x = rng.normal(size=(n_nodes, 2)).astype(np.float32)
    return GraphSample(edge_index, x, label)


class TestBatch:
    def test_offsets_applied(self):
        b = Batch.from_data_list([Data.from_sample(sample(3)), Data.from_sample(sample(4))])
        assert b.num_nodes == 7
        assert b.num_edges == 7
        # second graph's edges offset by 3
        assert b.edge_index[:, 3:].min() >= 3

    def test_batch_vector(self):
        b = Batch.from_data_list([Data.from_sample(sample(2)), Data.from_sample(sample(3))])
        np.testing.assert_array_equal(b.batch, [0, 0, 1, 1, 1])

    def test_labels_collected(self):
        b = Batch.from_data_list(
            [Data.from_sample(sample(2, label=4)), Data.from_sample(sample(2, label=1))]
        )
        np.testing.assert_array_equal(b.y, [4, 1])

    def test_features_concatenated_exactly(self):
        g1, g2 = sample(2, seed=1), sample(3, seed=2)
        b = Batch.from_data_list([Data.from_sample(g1), Data.from_sample(g2)])
        np.testing.assert_array_equal(b.x.data, np.concatenate([g1.x, g2.x]))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            Batch.from_data_list([])

    def test_charges_host_time(self, fresh_device):
        before = fresh_device.clock.elapsed
        Batch.from_data_list([Data.from_sample(sample(3))])
        assert fresh_device.clock.elapsed > before

    def test_pos_collated_when_present(self):
        g = sample(3)
        d = Data(g.x, g.edge_index, 0, pos=np.zeros((3, 2), np.float32))
        b = Batch.from_data_list([d, d])
        assert b.pos is not None and b.pos.shape == (6, 2)


class TestDataLoader:
    def graphs(self, n=10):
        return [sample(3, label=i % 2, seed=i) for i in range(n)]

    def test_len_and_batch_sizes(self):
        loader = DataLoader(self.graphs(10), batch_size=4)
        assert len(loader) == 3
        sizes = [b.num_graphs for b in loader]
        assert sizes == [4, 4, 2]

    def test_drop_last(self):
        loader = DataLoader(self.graphs(10), batch_size=4, drop_last=True)
        assert len(loader) == 2
        assert [b.num_graphs for b in loader] == [4, 4]

    def test_shuffle_changes_order(self):
        rng = np.random.default_rng(0)
        loader = DataLoader(self.graphs(64), batch_size=64, shuffle=True, rng=rng)
        first = next(iter(loader)).y.copy()
        second = next(iter(loader)).y.copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_stable(self):
        loader = DataLoader(self.graphs(6), batch_size=6)
        a = next(iter(loader)).y
        b = next(iter(loader)).y
        np.testing.assert_array_equal(a, b)

    def test_loading_attributed_to_phase(self, fresh_device):
        loader = DataLoader(self.graphs(8), batch_size=4)
        list(loader)
        assert fresh_device.clock.phase_elapsed["data_loading"] > 0

    def test_int_seed_accepted_and_reproducible(self):
        first = DataLoader(self.graphs(16), batch_size=16, shuffle=True, rng=7)
        second = DataLoader(self.graphs(16), batch_size=16, shuffle=True, rng=7)
        np.testing.assert_array_equal(next(iter(first)).y, next(iter(second)).y)

    def test_drop_last_zero_batches_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            DataLoader(self.graphs(3), batch_size=8, drop_last=True)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self.graphs(4), batch_size=0)


class TestMessagePassing:
    def test_default_copies_and_sums(self):
        mp = MessagePassing(aggr="sum")
        x = Tensor(np.array([[1.0], [10.0], [100.0]], np.float32))
        edge_index = np.array([[0, 1, 2], [1, 2, 0]])
        out = mp.propagate(edge_index, x)
        np.testing.assert_allclose(out.data, [[100.0], [1.0], [10.0]])

    def test_mean_aggregation(self):
        mp = MessagePassing(aggr="mean")
        x = Tensor(np.array([[2.0], [4.0], [0.0]], np.float32))
        edge_index = np.array([[0, 1], [2, 2]])
        out = mp.propagate(edge_index, x)
        np.testing.assert_allclose(out.data, [[0.0], [0.0], [3.0]])

    def test_invalid_aggregation(self):
        with pytest.raises(ValueError):
            MessagePassing(aggr="median")

    def test_custom_message(self):
        class Doubler(MessagePassing):
            def message(self, x_j, x_i, **kw):
                return x_j * 2.0

        x = Tensor(np.array([[3.0], [0.0]], np.float32))
        out = Doubler(aggr="sum").propagate(np.array([[0], [1]]), x)
        np.testing.assert_allclose(out.data, [[0.0], [6.0]])


class TestEdgeSoftmax:
    def test_sums_to_one_per_destination(self, rng):
        scores = Tensor(rng.normal(size=(6, 2)).astype(np.float32))
        dst = np.array([0, 0, 0, 1, 1, 2])
        out = edge_softmax(scores, dst, 3)
        sums = np.zeros((3, 2), np.float32)
        np.add.at(sums, dst, out.data)
        np.testing.assert_allclose(sums, np.ones((3, 2)), rtol=1e-5)

    def test_uniform_for_equal_scores(self):
        scores = Tensor(np.zeros((4, 1), np.float32))
        out = edge_softmax(scores, np.array([0, 0, 0, 0]), 1)
        np.testing.assert_allclose(out.data, np.full((4, 1), 0.25), rtol=1e-5)

    def test_stable_with_large_scores(self):
        scores = Tensor(np.array([[500.0], [500.0]], np.float32))
        out = edge_softmax(scores, np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [[0.5], [0.5]])

    def test_differentiable(self, rng):
        scores = Tensor(rng.normal(size=(4, 1)).astype(np.float32), requires_grad=True)
        edge_softmax(scores, np.array([0, 0, 1, 1]), 2).sum().backward()
        assert scores.grad is not None
        # softmax rows sum to const 1 => gradient of the sum is ~0
        np.testing.assert_allclose(scores.grad, np.zeros((4, 1)), atol=1e-5)


class TestPooling:
    def test_mean_pool(self):
        x = Tensor(np.array([[2.0], [4.0], [9.0]], np.float32))
        out = global_mean_pool(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [9.0]])

    def test_add_pool(self):
        x = Tensor(np.ones((4, 2), np.float32))
        out = global_add_pool(x, np.array([0, 0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0, 3.0], [1.0, 1.0]])

    def test_max_pool(self):
        x = Tensor(np.array([[1.0], [5.0], [3.0]], np.float32))
        out = global_max_pool(x, np.array([0, 0, 0]), 1)
        np.testing.assert_allclose(out.data, [[5.0]])
