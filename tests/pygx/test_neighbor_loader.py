"""PyG-style NeighborLoader: batch layout, knobs, determinism."""

import numpy as np
import pytest

from repro.device import Device, use_device
from repro.pygx import NeighborLoader
from repro.scale import make_scale_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_scale_dataset(600, avg_degree=6.0, n_classes=4,
                              n_features=8, seed=0)


def collect(loader):
    with use_device(Device()):
        return list(loader)


class TestBatches:
    def test_batch_count_and_seed_alignment(self, dataset):
        seeds = dataset.train_idx
        loader = NeighborLoader(dataset.graph, seeds, (4, 4), batch_size=16)
        assert len(loader) == (len(seeds) + 15) // 16
        batches = collect(loader)
        assert len(batches) == len(loader)
        offset = 0
        for batch in batches:
            chunk = seeds[offset:offset + 16]
            np.testing.assert_array_equal(batch.seed_nodes, chunk)
            # Seeds occupy the first rows, labels line up with them.
            np.testing.assert_array_equal(batch.y, dataset.graph.y[chunk])
            assert batch.n_seeds == len(chunk)
            assert batch.num_nodes >= batch.n_seeds
            assert batch.edge_index.shape[0] == 2
            offset += 16

    def test_deterministic_with_seeded_rng(self, dataset):
        def edges():
            loader = NeighborLoader(dataset.graph, dataset.train_idx, (4, 4),
                                    batch_size=16, shuffle=True, rng=5)
            return [b.edge_index.copy() for b in collect(loader)]

        for a, b in zip(edges(), edges()):
            np.testing.assert_array_equal(a, b)

    def test_ensure_self_loops(self, dataset):
        loader = NeighborLoader(dataset.graph, dataset.train_idx[:32], (3, 3),
                                batch_size=32, ensure_self_loops=True)
        (batch,) = collect(loader)
        src, dst = batch.edge_index
        loops = src == dst
        # Exactly one self edge per sampled node, no sampled duplicates.
        np.testing.assert_array_equal(np.sort(src[loops]),
                                      np.arange(batch.num_nodes))

    def test_full_graph_norm_attaches_true_degrees(self, dataset):
        loader = NeighborLoader(dataset.graph, dataset.train_idx[:32], (2, 2),
                                batch_size=32, full_graph_norm=True)
        (batch,) = collect(loader)
        # Seeds occupy the first rows, so their entries line up with the
        # full-graph in-degrees of the seed nodes.
        expected = np.diff(dataset.graph.indptr)[batch.seed_nodes]
        np.testing.assert_array_equal(batch.true_in_degrees[: batch.n_seeds],
                                      expected)
        assert len(batch.true_in_degrees) == batch.num_nodes

    def test_without_norm_no_degrees(self, dataset):
        loader = NeighborLoader(dataset.graph, dataset.train_idx[:8], (2, 2),
                                batch_size=8)
        (batch,) = collect(loader)
        assert batch.true_in_degrees is None


class TestValidation:
    def test_bad_batch_size(self, dataset):
        with pytest.raises(ValueError):
            NeighborLoader(dataset.graph, dataset.train_idx, (4,), batch_size=0)

    def test_missing_labels(self, dataset):
        from repro.graph import CSRBigGraph

        bare = CSRBigGraph(dataset.graph.indptr, dataset.graph.indices,
                           x=dataset.graph.x)
        with pytest.raises(ValueError):
            NeighborLoader(bare, dataset.train_idx, (4,), batch_size=8)
