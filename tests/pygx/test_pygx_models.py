"""All six PyG-style models: shapes, gradients, equation semantics."""

import numpy as np
import pytest

from repro.datasets import enzymes
from repro.models import MODEL_NAMES, graph_config, node_config
from repro.nn import cross_entropy
from repro.pygx import Batch, Data, build_model
from repro.pygx.models.gcn import GCNConv
from repro.pygx.models.gin import GINConv
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def tiny_batch():
    ds = enzymes(seed=0, num_graphs=12)
    batch = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
    return ds, batch


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestGraphTaskModels:
    def test_forward_shape(self, name, tiny_batch):
        ds, batch = tiny_batch
        cfg = graph_config(name, in_dim=ds.num_features, n_classes=ds.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        logits = model(batch)
        assert logits.shape == (batch.num_graphs, ds.num_classes)

    def test_all_parameters_receive_gradients(self, name, tiny_batch):
        ds, batch = tiny_batch
        cfg = graph_config(name, in_dim=ds.num_features, n_classes=ds.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        loss = cross_entropy(model(batch), batch.y)
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"

    def test_has_four_conv_layers(self, name, tiny_batch):
        ds, _ = tiny_batch
        cfg = graph_config(name, in_dim=ds.num_features, n_classes=ds.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        assert model.conv_names == ["conv1", "conv2", "conv3", "conv4"]

    def test_eval_mode_deterministic(self, name, tiny_batch):
        ds, batch = tiny_batch
        cfg = graph_config(name, in_dim=ds.num_features, n_classes=ds.num_classes)
        model = build_model(cfg, np.random.default_rng(0))
        model.eval()
        a = model(batch).data
        b = model(batch).data
        np.testing.assert_allclose(a, b, atol=1e-6)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_node_task_models_emit_per_node_logits(name):
    ds = enzymes(seed=0, num_graphs=4)
    g = ds.graphs[0]
    batch = Batch.from_data_list([Data.from_sample(g)])
    cfg = node_config(name, in_dim=ds.num_features, n_classes=5)
    model = build_model(cfg, np.random.default_rng(0))
    model.eval()  # disable dropout
    logits = model(batch)
    assert logits.shape == (g.num_nodes, 5)


class TestGCNSemantics:
    def test_symmetric_normalisation_on_pair(self):
        """Two nodes + self loops: hand-computed D^-1/2 A D^-1/2 X W."""
        conv = GCNConv(1, 1, np.random.default_rng(0), activation=False)
        conv.linear.weight.data[:] = 1.0
        conv.linear.bias.data[:] = 0.0
        x = Tensor(np.array([[1.0], [2.0]], np.float32))
        edge_index = np.array([[0, 1], [1, 0]])
        out = conv(x, edge_index, 2)
        # with self loops every degree is 2 -> out_i = (x_i + x_j) / 2
        np.testing.assert_allclose(out.data, [[1.5], [1.5]], rtol=1e-5)

    def test_isolated_node_keeps_self_contribution(self):
        conv = GCNConv(1, 1, np.random.default_rng(0), activation=False)
        conv.linear.weight.data[:] = 1.0
        conv.linear.bias.data[:] = 0.0
        x = Tensor(np.array([[4.0]], np.float32))
        out = conv(x, np.zeros((2, 0), np.int64), 1)
        np.testing.assert_allclose(out.data, [[4.0]], rtol=1e-5)


class TestGINSemantics:
    def test_eps_scales_self_term(self):
        conv = GINConv(1, 1, np.random.default_rng(0), learn_eps=True, activation=False)
        conv.eps.data[:] = 1.0  # (1 + eps) = 2
        # identity MLP
        conv.fc_v.weight.data[:] = 1.0
        conv.fc_v.bias.data[:] = 0.0
        conv.fc_w.weight.data[:] = 1.0
        conv.fc_w.bias.data[:] = 0.0
        conv.eval()
        x = Tensor(np.array([[1.0], [10.0]], np.float32))
        out = conv(x, np.array([[0], [1]]), 2)
        # node0: 2*1 + 0 ; node1: 2*10 + 1 (eval BN uses running stats ~ identity)
        np.testing.assert_allclose(out.data, [[2.0], [21.0]], rtol=1e-3)

    def test_fixed_eps_has_no_parameter(self):
        conv = GINConv(2, 2, np.random.default_rng(0), learn_eps=False)
        assert conv.eps is None


class TestGATSemantics:
    def test_uniform_attention_reduces_to_mean(self):
        from repro.pygx.models.gat import GATConv

        conv = GATConv(2, head_dim=2, heads=1, rng=np.random.default_rng(0))
        conv.attn_src.data[:] = 0.0
        conv.attn_dst.data[:] = 0.0  # all logits zero -> uniform attention
        x = Tensor(np.array([[1.0, 0.0], [3.0, 0.0], [0.0, 0.0]], np.float32))
        edge_index = np.array([[0, 1], [2, 2]])
        out = conv(x, edge_index, 3)
        z = x.data @ conv.fc.weight.data
        expected_node2 = (z[0] + z[1]) / 2.0
        # ELU is identity for positive values; compare via inverse where safe
        got = out.data[2]
        expected = np.where(expected_node2 > 0, expected_node2, np.expm1(expected_node2))
        np.testing.assert_allclose(got, expected, rtol=1e-4)


class TestGatedGCNSemantics:
    def test_residual_requires_matching_dims(self):
        from repro.pygx.models.gatedgcn import GatedGCNConv

        rng = np.random.default_rng(0)
        assert GatedGCNConv(4, 4, rng).residual
        assert not GatedGCNConv(4, 8, rng).residual


class TestFactory:
    def test_unknown_model_rejected_at_config(self):
        with pytest.raises((KeyError, ValueError)):
            graph_config("transformer", in_dim=4, n_classes=2)

    def test_builder_returns_distinct_instances(self):
        cfg = graph_config("gcn", in_dim=4, n_classes=2)
        a = build_model(cfg, np.random.default_rng(0))
        b = build_model(cfg, np.random.default_rng(0))
        assert a is not b
