"""DataParallel communication model (Fig. 6 substrate)."""

import pytest

from repro.device import DataParallelPlan, Device, charge_iteration_overhead


def make_plan(n_gpus, param_bytes=4_000_000, input_bytes=8_000_000, output_bytes=40_000):
    return DataParallelPlan(
        n_gpus=n_gpus,
        param_bytes=param_bytes,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
    )


class TestDataParallelPlan:
    def test_single_gpu_free(self):
        dev = Device()
        cost = charge_iteration_overhead(dev, make_plan(1))
        assert cost == 0.0
        assert dev.clock.elapsed == 0.0

    def test_overhead_grows_with_gpu_count(self):
        costs = []
        for n in (2, 4, 8):
            dev = Device()
            costs.append(charge_iteration_overhead(dev, make_plan(n)))
        assert costs[0] < costs[1] < costs[2]

    def test_cost_charged_to_clock(self):
        dev = Device()
        cost = charge_iteration_overhead(dev, make_plan(4))
        assert dev.clock.elapsed == pytest.approx(cost)
        assert dev.clock.gpu_busy == 0.0  # pure transfer/host time

    def test_param_broadcast_dominates_for_big_models(self):
        small = charge_iteration_overhead(Device(), make_plan(8, param_bytes=1_000))
        big = charge_iteration_overhead(Device(), make_plan(8, param_bytes=100_000_000))
        assert big > 10 * small

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            make_plan(0)
