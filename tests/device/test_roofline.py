"""Roofline classification: boundary exactness at the ridge point, the
launch-bound threshold, zero-FLOP copies, and record aggregation."""

from __future__ import annotations

import pytest

from repro.device import (
    BOUND_CLASSES,
    bound_histogram,
    classify_kernel,
    classify_records,
    classify_transfer,
    roofline_attribution,
)
from repro.device.gpu import RTX_2080TI, GPUSpec, kernel_efficiency
from repro.device.kernel import KernelRecord

# Round numbers so the ridge point (10 FLOP/byte) and every leg duration
# are exact in floating point: boundary cases below test *equalities*.
SPEC = GPUSpec(
    name="test-gpu",
    peak_flops=1e12,
    mem_bandwidth=1e11,
    memory_bytes=1 << 30,
    launch_overhead=35e-6,
    min_kernel_time=3e-6,
    pcie_bandwidth=1e10,
    pcie_latency=10e-6,
)


def _record(name, flops, nbytes, duration=None):
    if duration is None:
        duration = SPEC.kernel_time(flops, nbytes, kernel_efficiency(name))
    return KernelRecord(
        name=name, scope=(), duration=duration, flops=flops,
        bytes_moved=nbytes, timestamp=0.0,
    )


class TestRidgePoint:
    def test_ridge_point_value(self):
        assert SPEC.ridge_point == 10.0
        assert RTX_2080TI.ridge_point == pytest.approx(
            RTX_2080TI.peak_flops / RTX_2080TI.mem_bandwidth
        )

    def test_exactly_at_ridge_is_compute(self):
        # 1e8 bytes -> memory leg 1 ms >> launch overhead, so the bound
        # is decided purely by the legs; at the ridge both legs are equal
        # and the tie deterministically goes to compute.
        nbytes = 1e8
        flops = nbytes * SPEC.ridge_point
        compute_leg, memory_leg = SPEC.roofline_times(flops, nbytes)
        assert compute_leg == memory_leg
        assert classify_kernel(SPEC, flops, nbytes) == "compute"

    def test_epsilon_below_ridge_is_bandwidth(self):
        nbytes = 1e8
        flops = nbytes * SPEC.ridge_point * (1 - 1e-9)
        assert classify_kernel(SPEC, flops, nbytes) == "bandwidth"

    def test_epsilon_above_ridge_is_compute(self):
        nbytes = 1e8
        flops = nbytes * SPEC.ridge_point * (1 + 1e-9)
        assert classify_kernel(SPEC, flops, nbytes) == "compute"

    def test_efficiency_derates_both_legs_equally(self):
        # Efficiency scales compute and memory legs together, so the
        # ridge point — and the compute/bandwidth verdict — is
        # efficiency-independent.
        nbytes = 1e8
        for eff in (1.0, 0.5, 0.2):
            at = classify_kernel(SPEC, nbytes * SPEC.ridge_point, nbytes, eff)
            below = classify_kernel(SPEC, nbytes, nbytes, eff)
            assert (at, below) == ("compute", "bandwidth")


class TestLaunchBound:
    def test_tiny_kernel_is_launch_bound(self):
        # 100 bytes -> 1 ns memory leg, floored to min_kernel_time (3 us),
        # far under the 35 us dispatch cost.
        assert classify_kernel(SPEC, 0.0, 100.0) == "launch"

    def test_zero_work_kernel_is_launch_bound(self):
        assert classify_kernel(SPEC, 0.0, 0.0) == "launch"

    def test_body_equal_to_overhead_is_launch_bound(self):
        # Boundary: body == launch_overhead classifies as launch (<=),
        # one part in 1e9 past it flips to the roofline legs.
        nbytes = SPEC.mem_bandwidth * SPEC.launch_overhead
        assert classify_kernel(SPEC, 0.0, nbytes) == "launch"
        assert classify_kernel(SPEC, 0.0, nbytes * (1 + 1e-9)) == "bandwidth"

    def test_launch_threshold_scales_with_efficiency(self):
        # At 50% efficiency the body crosses the dispatch cost at half
        # the byte count, so the same kernel can be launch-bound at
        # eff=1.0 and bandwidth-bound at eff=0.5.
        nbytes = SPEC.mem_bandwidth * SPEC.launch_overhead * 0.75
        assert classify_kernel(SPEC, 0.0, nbytes, efficiency=1.0) == "launch"
        assert classify_kernel(SPEC, 0.0, nbytes, efficiency=0.5) == "bandwidth"


class TestTransfers:
    def test_zero_flop_copies_never_compute(self):
        # Copies sit on the PCIe roofline: latency- ("launch") or
        # bandwidth-bound, never compute.
        for nbytes in (0.0, 1.0, 1e5, 1e9):
            assert classify_transfer(SPEC, nbytes) in ("launch", "bandwidth")

    def test_transfer_latency_boundary(self):
        # wire == pcie_latency at exactly bandwidth * latency bytes.
        nbytes = SPEC.pcie_bandwidth * SPEC.pcie_latency
        assert classify_transfer(SPEC, nbytes) == "launch"
        assert classify_transfer(SPEC, nbytes * (1 + 1e-9)) == "bandwidth"

    def test_single_memcpy_record_matches_classify_transfer(self):
        for nbytes in (1e3, 1e9):
            record = _record("memcpy_h2d", 0.0, nbytes,
                             duration=SPEC.transfer_time(nbytes))
            assert classify_records(SPEC, [record]) == classify_transfer(
                SPEC, nbytes
            )


class TestClassifyRecords:
    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            classify_records(SPEC, [])

    def test_single_record_matches_classify_kernel(self):
        cases = [("gemm", 1e9, 1e7), ("gemm", 10.0, 10.0), ("add", 0.0, 1e9)]
        for name, flops, nbytes in cases:
            expected = classify_kernel(SPEC, flops, nbytes, kernel_efficiency(name))
            assert classify_records(SPEC, [_record(name, flops, nbytes)]) == expected

    def test_many_tiny_launches_are_launch_bound(self):
        records = [_record("add", 0.0, 100.0) for _ in range(8)]
        assert classify_records(SPEC, records) == "launch"

    def test_mixed_op_follows_dominant_leg(self):
        # One big GEMM (compute leg 10x the memory leg) next to a small
        # bandwidth kernel: the op as a whole is compute-bound.
        records = [_record("gemm", 1e11, 1e9), _record("add", 0.0, 1e7)]
        assert classify_records(SPEC, records) == "compute"


class TestAttribution:
    def test_points_sorted_by_wall_and_histogram_totals(self):
        records = [
            _record("gemm", 1e11, 1e9),
            _record("add", 0.0, 100.0),
            _record("add", 0.0, 100.0),
            _record("memcpy_h2d", 0.0, 1e9, duration=SPEC.transfer_time(1e9)),
        ]
        points = roofline_attribution(SPEC, records)
        assert [p.name for p in points][0] == "gemm"  # largest wall first
        walls = [p.device_time + p.launches * SPEC.launch_overhead for p in points]
        assert walls == sorted(walls, reverse=True)
        add = next(p for p in points if p.name == "add")
        assert add.launches == 2
        assert add.bound == "launch"
        hist = bound_histogram(points)
        assert set(hist) == set(BOUND_CLASSES)
        assert sum(hist.values()) == len(points)

    def test_intensity_zero_for_pure_copies(self):
        points = roofline_attribution(
            SPEC, [_record("memcpy_h2d", 0.0, 1e9, duration=SPEC.transfer_time(1e9))]
        )
        assert points[0].intensity == 0.0
        assert points[0].bound == "bandwidth"
