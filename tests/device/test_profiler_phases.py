"""Kernel records carry the active clock phase; the profiler and the
Chrome trace expose the sampling/loading/compute attribution."""

import json

import numpy as np

from repro.device import Device, use_device
from repro.device.timeline import to_chrome_trace
from repro.tensor import Tensor
from repro.tensor import ops


def _matmul(n=16):
    a = Tensor(np.ones((n, n), np.float32))
    b = Tensor(np.ones((n, n), np.float32))
    return ops.matmul(a, b)


class TestPhaseAttribution:
    def test_records_carry_active_phase(self):
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            with device.clock.phase("sampling"):
                _matmul()
            with device.clock.phase("forward"):
                _matmul()
            _matmul()  # outside any phase
        phases = [r.phase for r in device.profiler.records]
        assert "sampling" in phases
        assert "forward" in phases
        assert "" in phases

    def test_time_by_phase_buckets(self):
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            with device.clock.phase("sampling"):
                _matmul()
                _matmul()
            with device.clock.phase("forward"):
                _matmul(32)
            _matmul()
        by_phase = device.profiler.time_by_phase()
        assert set(by_phase) == {"sampling", "forward", "other"}
        assert by_phase["forward"] > 0
        # Two sampling kernels outweigh the single un-phased one.
        assert by_phase["sampling"] > by_phase["other"]
        total = sum(r.duration for r in device.profiler.records)
        assert sum(by_phase.values()) == total

    def test_empty_profiler(self):
        assert Device().profiler.time_by_phase() == {}

    def test_chrome_trace_events_carry_phase(self):
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            with device.clock.phase("sampling"):
                _matmul()
        trace = json.loads(to_chrome_trace(device.profiler.records))
        kernel_events = [e for e in trace["traceEvents"]
                         if e.get("args", {}).get("phase") == "sampling"]
        assert kernel_events
