"""Chrome-trace export of profiled kernels."""

import json

import pytest

from repro.device import Device
from repro.device.timeline import to_chrome_trace, write_chrome_trace


@pytest.fixture()
def profiled_device():
    device = Device()
    device.profiler.enabled = True
    with device.scope("net"):
        with device.scope("conv1"):
            device.launch("matmul", flops=1e9, bytes_moved=1e6)
        device.launch("relu", flops=1e6, bytes_moved=1e6)
    return device


class TestChromeTrace:
    def test_event_per_kernel(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        assert len(trace["traceEvents"]) == 2

    def test_event_fields(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        event = trace["traceEvents"][0]
        assert event["name"] == "matmul"
        assert event["ph"] == "X"
        assert event["cat"] == "net/conv1"
        assert event["dur"] > 0
        assert event["ts"] >= 0
        assert event["args"]["flops"] == 1e9

    def test_events_ordered_and_non_overlapping(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        a, b = trace["traceEvents"]
        assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_write_to_file(self, profiled_device, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(profiled_device.profiler.records, path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"

    def test_empty_records(self):
        trace = json.loads(to_chrome_trace([]))
        assert trace["traceEvents"] == []
