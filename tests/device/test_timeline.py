"""Chrome-trace export of profiled kernels."""

import json

import pytest

from repro.device import Device
from repro.device.timeline import to_chrome_trace, write_chrome_trace


@pytest.fixture()
def profiled_device():
    device = Device()
    device.profiler.enabled = True
    with device.scope("net"):
        with device.scope("conv1"):
            device.launch("matmul", flops=1e9, bytes_moved=1e6)
        device.launch("relu", flops=1e6, bytes_moved=1e6)
    return device


def _kernel_events(trace):
    return [e for e in trace["traceEvents"] if e["ph"] == "X"]


def _counter_events(trace):
    return [e for e in trace["traceEvents"] if e["ph"] == "C"]


class TestChromeTrace:
    def test_event_per_kernel(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        assert len(_kernel_events(trace)) == 2

    def test_event_fields(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        event = _kernel_events(trace)[0]
        assert event["name"] == "matmul"
        assert event["ph"] == "X"
        assert event["cat"] == "net/conv1"
        assert event["dur"] > 0
        assert event["ts"] >= 0
        assert event["args"]["flops"] == 1e9

    def test_events_ordered_and_non_overlapping(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        a, b = _kernel_events(trace)
        assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_write_to_file(self, profiled_device, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(profiled_device.profiler.records, path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"

    def test_empty_records(self):
        trace = json.loads(to_chrome_trace([]))
        assert trace["traceEvents"] == []


class TestPerStreamTracks:
    @pytest.fixture()
    def multi_stream_device(self):
        device = Device()
        device.profiler.enabled = True
        device.launch("matmul", flops=1e9, bytes_moved=1e6)
        with device.on(device.stream("prefetch")):
            device.launch("collate", flops=0.0, bytes_moved=1e6)
        return device

    def test_tid_is_stream_id(self, multi_stream_device):
        records = multi_stream_device.profiler.records
        trace = json.loads(to_chrome_trace(records))
        tids = {e["name"]: e["tid"] for e in _kernel_events(trace)}
        assert tids["matmul"] == 0
        assert tids["collate"] == multi_stream_device.stream("prefetch").id

    def test_thread_name_metadata_for_multi_stream(self, multi_stream_device):
        trace = json.loads(
            to_chrome_trace(
                multi_stream_device.profiler.records,
                stream_names=multi_stream_device.stream_names(),
            )
        )
        meta = {e["tid"]: e["args"]["name"]
                for e in trace["traceEvents"] if e["ph"] == "M"}
        assert "default" in meta[0]
        assert "prefetch" in meta[1]

    def test_single_stream_trace_has_no_metadata(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        assert not [e for e in trace["traceEvents"] if e["ph"] == "M"]

    def test_unnamed_streams_get_fallback_labels(self, multi_stream_device):
        trace = json.loads(to_chrome_trace(multi_stream_device.profiler.records))
        meta = [e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any("stream 0" in name for name in meta)


class TestMemoryCounterTrack:
    def test_counter_event_per_kernel(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        assert len(_counter_events(trace)) == 2

    def test_counter_named_and_sampled_at_kernel_end(self, profiled_device):
        trace = json.loads(to_chrome_trace(profiled_device.profiler.records))
        kernels = _kernel_events(trace)
        counters = _counter_events(trace)
        for kernel, counter in zip(kernels, counters):
            assert counter["name"] == "Device memory"
            assert counter["ts"] == pytest.approx(kernel["ts"] + kernel["dur"])

    def test_counter_reports_tracked_memory(self):
        import numpy as np

        device = Device()
        device.profiler.enabled = True
        buf = np.zeros(1000, dtype=np.float32)
        device.track(buf)
        device.launch("matmul", flops=1e6, bytes_moved=1e4)
        trace = json.loads(to_chrome_trace(device.profiler.records))
        counter = _counter_events(trace)[0]
        assert counter["args"]["used_mb"] == pytest.approx(buf.nbytes / 1e6)


class TestFabricLinkTracks:
    @pytest.fixture()
    def comm_device(self):
        import numpy as np

        from repro.dist import Communicator

        device = Device()
        device.profiler.enabled = True
        comm = Communicator(3, device=device, record_transfers=True)
        comm.all_reduce([np.ones(64, np.float32) for _ in range(3)],
                        algorithm="ring")
        comm.synchronize()
        return device, comm

    def test_fabric_process_with_one_track_per_link(self, comm_device):
        device, comm = comm_device
        trace = json.loads(
            to_chrome_trace(device.profiler.records, fabric=comm.fabric)
        )
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        process = [e for e in meta if e["name"] == "process_name"]
        assert len(process) == 1
        assert "interconnect" in process[0]["args"]["name"]
        links = {e["args"]["name"] for e in meta if e["name"] == "thread_name"
                 and e["pid"] == process[0]["pid"]}
        # Ring over 3 replicas uses every directed ring edge.
        assert links == {"link 0->1", "link 1->2", "link 2->0"}

    def test_transfer_events_carry_bytes_and_endpoints(self, comm_device):
        device, comm = comm_device
        trace = json.loads(
            to_chrome_trace(device.profiler.records, fabric=comm.fabric)
        )
        transfers = [e for e in _kernel_events(trace) if e.get("cat") == "fabric"]
        assert len(transfers) == len(comm.fabric.transfers)
        for event in transfers:
            assert event["args"]["bytes"] > 0
            assert event["dur"] > 0
            assert event["args"]["src"] != event["args"]["dst"]

    def test_non_recording_fabric_adds_nothing(self, comm_device):
        device, _ = comm_device
        from repro.device import Fabric

        trace = json.loads(
            to_chrome_trace(device.profiler.records, fabric=Fabric(2))
        )
        assert not [e for e in trace["traceEvents"] if e["pid"] == 1]
