"""Streams, events, async launches and host synchronisation."""

import pytest

from repro.device import DEFAULT_STREAM_ID, Device, Event, Stream


class TestStreamPrimitives:
    def test_enqueue_serialises_within_stream(self):
        device = Device()
        s = device.stream("s")
        first = s.enqueue(1.0)
        second = s.enqueue(2.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(3.0)
        assert s.busy == pytest.approx(3.0)

    def test_enqueue_starts_no_earlier_than_now(self):
        device = Device()
        device.clock.advance_host(5.0)
        s = device.stream("s")
        done = s.enqueue(1.0)
        assert done == pytest.approx(6.0)

    def test_enqueue_honours_after_dependency(self):
        device = Device()
        s = device.stream("s")
        done = s.enqueue(1.0, after=10.0)
        assert done == pytest.approx(11.0)

    def test_enqueue_rejects_negative_work(self):
        device = Device()
        with pytest.raises(ValueError):
            device.stream("s").enqueue(-1.0)

    def test_record_and_query(self):
        device = Device()
        s = device.stream("s")
        s.enqueue(2.0)
        event = s.record()
        assert isinstance(event, Event)
        assert event.timestamp == pytest.approx(2.0)
        assert event.stream_id == s.id
        assert not event.query(device.clock)
        assert not s.query()
        device.clock.advance_host(2.0)
        assert event.query(device.clock)
        assert s.query()

    def test_wait_event_pushes_ready_forward_only(self):
        device = Device()
        a, b = device.stream("a"), device.stream("b")
        a.enqueue(3.0)
        b.wait_event(a.record())
        assert b.ready == pytest.approx(3.0)
        b.wait_event(Event(timestamp=1.0))  # already passed: no effect
        assert b.ready == pytest.approx(3.0)


class TestDeviceStreamRegistry:
    def test_default_stream_is_stream_zero(self):
        device = Device()
        assert device.default_stream.id == DEFAULT_STREAM_ID
        assert device.stream("default") is device.default_stream
        assert device.current_stream is device.default_stream

    def test_get_or_create_by_name(self):
        device = Device()
        s = device.stream("prefetch")
        assert device.stream("prefetch") is s
        assert s.id == 1
        assert device.stream_names() == {0: "default", 1: "prefetch"}
        assert [x.id for x in device.streams] == [0, 1]

    def test_reset_zeroes_stream_timelines(self):
        device = Device()
        s = device.stream("s")
        s.enqueue(1.0)
        device.reset()
        assert s.ready == 0.0 and s.busy == 0.0


class TestAsyncLaunch:
    def test_default_launch_is_serial(self):
        device = Device()
        duration = device.launch("matmul", flops=1e9)
        assert device.clock.elapsed == pytest.approx(
            device.spec.launch_overhead + duration
        )
        assert device.clock.gpu_busy == pytest.approx(duration)

    def test_stream_launch_only_costs_host_the_overhead(self):
        device = Device()
        s = device.stream("compute")
        with device.on(s):
            duration = device.launch("matmul", flops=1e9)
        assert device.clock.elapsed == pytest.approx(device.spec.launch_overhead)
        # The work is real GPU busy time even before anyone synchronises.
        assert device.clock.gpu_busy == pytest.approx(duration)
        assert s.ready == pytest.approx(device.spec.launch_overhead + duration)

    def test_on_default_stream_stays_serial(self):
        device = Device()
        with device.on(device.default_stream):
            duration = device.launch("matmul", flops=1e9)
        assert device.clock.elapsed == pytest.approx(
            device.spec.launch_overhead + duration
        )

    def test_explicit_stream_argument(self):
        device = Device()
        s = device.stream("compute")
        device.launch("matmul", flops=1e9, stream=s)
        assert device.clock.elapsed == pytest.approx(device.spec.launch_overhead)

    def test_async_records_carry_stream_id(self):
        device = Device()
        device.profiler.enabled = True
        s = device.stream("compute")
        device.launch("matmul", flops=1e6, stream=s)
        device.launch("relu", flops=1e3)
        by_stream = {r.stream for r in device.profiler.records}
        assert by_stream == {0, s.id}
        assert device.profiler.time_by_stream().keys() == by_stream

    def test_utilization_rises_under_overlap(self):
        serial, overlapped = Device(), Device()
        serial.launch("matmul", flops=1e10)
        s = overlapped.stream("compute")
        with overlapped.on(s):
            overlapped.launch("matmul", flops=1e10)
        overlapped.synchronize(s)
        # Same work, but the overlapped clock never double-pays host+GPU
        # serially, so utilisation can only be >= the serial run's.
        assert overlapped.clock.utilization() >= serial.clock.utilization()


class TestHostSynchronisation:
    def test_wait_event_advances_to_timestamp(self):
        device = Device()
        s = device.stream("s")
        s.enqueue(2.0)
        device.wait_event(s.record())
        assert device.clock.elapsed == pytest.approx(2.0)
        assert device.clock.wait == pytest.approx(2.0)

    def test_wait_on_past_event_is_free(self):
        device = Device()
        device.clock.advance_host(5.0)
        device.wait_event(Event(timestamp=1.0))
        assert device.clock.elapsed == pytest.approx(5.0)

    def test_synchronize_stream_and_all(self):
        device = Device()
        a, b = device.stream("a"), device.stream("b")
        a.enqueue(1.0)
        b.enqueue(4.0)
        device.synchronize(a)
        assert device.clock.elapsed == pytest.approx(1.0)
        device.synchronize()
        assert device.clock.elapsed == pytest.approx(4.0)

    def test_wait_counts_as_busy_not_idle(self):
        device = Device()
        s = device.stream("s")
        s.enqueue(1.0)
        device.synchronize(s)
        assert device.clock.busy_fraction() == pytest.approx(1.0)


class TestOffload:
    def test_host_work_lands_on_worker_stream(self):
        device = Device()
        worker = device.stream("worker")
        with device.offload(worker):
            device.host(0.5)
        assert device.clock.elapsed == 0.0
        assert worker.ready == pytest.approx(0.5)

    def test_transfer_sequences_after_worker(self):
        device = Device()
        worker, copy = device.stream("worker"), device.stream("copy")
        with device.offload(worker, copy_stream=copy):
            device.host(0.5)
            device.transfer(1e6)
        assert copy.ready == pytest.approx(0.5 + device.spec.transfer_time(1e6))

    def test_nested_offload_rejected(self):
        device = Device()
        worker = device.stream("worker")
        with device.offload(worker):
            with pytest.raises(RuntimeError):
                with device.offload(worker):
                    pass

    def test_worker_cannot_start_in_the_past(self):
        device = Device()
        worker = device.stream("worker")
        device.clock.advance_host(3.0)
        with device.offload(worker):
            device.host(1.0)
        assert worker.ready == pytest.approx(4.0)
