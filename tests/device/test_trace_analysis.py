"""Kernel-trace analysis utilities."""

import numpy as np
import pytest

from repro.device import (
    Device,
    duration_percentiles,
    kernel_stats,
    launch_bound_fraction,
    overlap_bound,
    top_kernels,
)


@pytest.fixture()
def records():
    dev = Device()
    dev.profiler.enabled = True
    for _ in range(5):
        dev.launch("matmul", flops=1e9, bytes_moved=1e6)
    for _ in range(20):
        dev.launch("add", flops=1e3, bytes_moved=1e3)
    return dev.profiler.records


class TestKernelStats:
    def test_grouped_by_name(self, records):
        stats = kernel_stats(records)
        assert {s.name for s in stats} == {"matmul", "add"}

    def test_sorted_by_total_time(self, records):
        stats = kernel_stats(records)
        assert stats[0].total_time >= stats[1].total_time
        assert stats[0].name == "matmul"

    def test_launch_counts(self, records):
        by_name = {s.name: s for s in kernel_stats(records)}
        assert by_name["matmul"].launches == 5
        assert by_name["add"].launches == 20

    def test_mean_time_consistent(self, records):
        for s in kernel_stats(records):
            assert s.mean_time == pytest.approx(s.total_time / s.launches)

    def test_mean_bandwidth(self, records):
        by_name = {s.name: s for s in kernel_stats(records)}
        assert by_name["matmul"].mean_bandwidth > 0

    def test_top_k(self, records):
        assert [s.name for s in top_kernels(records, k=1)] == ["matmul"]

    def test_empty(self):
        assert kernel_stats([]) == []


class TestLaunchBound:
    def test_small_kernels_launch_bound(self):
        dev = Device()
        dev.profiler.enabled = True
        for _ in range(50):
            dev.launch("tiny")  # min-duration kernels
        frac = launch_bound_fraction(dev.profiler.records, dev.spec.launch_overhead)
        assert frac > 0.8

    def test_big_kernels_not_launch_bound(self):
        dev = Device()
        dev.profiler.enabled = True
        dev.launch("huge", flops=1e13)
        frac = launch_bound_fraction(dev.profiler.records, dev.spec.launch_overhead)
        assert frac < 0.1

    def test_empty(self):
        assert launch_bound_fraction([], 1e-5) == 0.0


class TestPercentilesAndOverlap:
    def test_percentiles_ordered(self, records):
        p = duration_percentiles(records, (50, 90, 99))
        assert p[50] <= p[90] <= p[99]

    def test_percentiles_empty(self):
        assert duration_percentiles([], (50,)) == {50: 0.0}

    def test_overlap_bound_balanced(self):
        ideal, speedup = overlap_bound(gpu_busy=1.0, elapsed=2.0)
        assert ideal == pytest.approx(1.0)
        assert speedup == pytest.approx(2.0)

    def test_overlap_bound_host_dominated(self):
        ideal, speedup = overlap_bound(gpu_busy=0.1, elapsed=1.0)
        assert ideal == pytest.approx(0.9)
        assert speedup == pytest.approx(1.0 / 0.9)

    def test_overlap_bound_degenerate(self):
        assert overlap_bound(0.0, 0.0) == (0.0, 1.0)
