"""Scoped profiler regressions: re-entrant and repeated module scopes.

A module called twice in one step (weight-shared layers, recursive blocks)
pushes the same scope name onto the stack more than once; ``in_scope`` and
the profiler aggregations must keep those invocations distinct by position,
not collapse or double-count them.
"""

import numpy as np
import pytest

from repro.device import Device, KernelRecord, use_device
from repro.nn import Linear, Module
from repro.tensor import Tensor


def _record(scope, name="k", duration=1.0):
    return KernelRecord(
        name=name, scope=tuple(scope), duration=duration,
        flops=0.0, bytes_moved=0.0, timestamp=0.0,
    )


class TestInScope:
    def test_prefix_semantics(self):
        record = _record(("net", "block", "linear"))
        assert record.in_scope(("net",))
        assert record.in_scope(("net", "block"))
        assert record.in_scope(("net", "block", "linear"))
        assert not record.in_scope(("block",))  # not a prefix, just a member
        assert not record.in_scope(("net", "linear"))

    def test_prefix_longer_than_scope(self):
        record = _record(("net",))
        assert not record.in_scope(("net", "block"))

    def test_empty_prefix_matches_everything(self):
        assert _record(("a", "b")).in_scope(())
        assert _record(()).in_scope(())

    def test_reentrant_scope_distinct_from_single(self):
        # A block that calls itself: scope ("block", "block") is inside
        # ("block",) but a record at depth 1 is NOT inside ("block", "block").
        outer = _record(("block",))
        inner = _record(("block", "block"))
        assert inner.in_scope(("block",))
        assert inner.in_scope(("block", "block"))
        assert not outer.in_scope(("block", "block"))

    def test_accepts_list_prefix(self):
        assert _record(("net", "conv1")).in_scope(["net", "conv1"])


class _SharedBlock(Module):
    """One linear layer applied twice per forward (weight sharing)."""

    def __init__(self, rng):
        super().__init__()
        self.linear = Linear(4, 4, rng=rng)

    def forward(self, x):
        return self.linear(self.linear(x))


class _Recursive(Module):
    """A module that re-enters its own scope via a self call."""

    def __init__(self, rng):
        super().__init__()
        self.linear = Linear(4, 4, rng=rng)

    def forward(self, x, depth=2):
        h = self.linear(x)
        if depth > 1:
            with_scope = self.__call__  # re-enters "block" scope
            return with_scope(h, depth=depth - 1)
        return h


class TestReentrantModuleScopes:
    def test_same_module_twice_in_one_step(self, rng):
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            block = _SharedBlock(rng)
            block(Tensor(np.ones((2, 4))))
        records = device.profiler.records
        linear_scoped = [r for r in records if r.in_scope(("_SharedBlock", "linear"))]
        # both invocations of the shared layer land under the same prefix
        assert len(linear_scoped) >= 2
        matmuls = [r for r in linear_scoped if r.name == "matmul"]
        assert len(matmuls) == 2
        # and the profiler sums both without double counting
        total = device.profiler.total_time(("_SharedBlock", "linear"))
        assert total == pytest.approx(sum(r.duration for r in linear_scoped))

    def test_nested_reentrant_scope_stack(self, rng):
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            block = _Recursive(rng)
            block(Tensor(np.ones((2, 4))))
        records = device.profiler.records
        depth1 = [r for r in records if r.scope[:1] == ("_Recursive",)]
        depth2 = [r for r in records if r.scope[:2] == ("_Recursive", "_Recursive")]
        assert depth1 and depth2
        # the re-entered scope is strictly nested: every depth-2 record also
        # matches the depth-1 prefix, never the other way round
        for r in depth2:
            assert r.in_scope(("_Recursive",))
        shallow_only = [r for r in depth1 if r not in depth2]
        for r in shallow_only:
            assert not r.in_scope(("_Recursive", "_Recursive"))
        # recursion depth 2 -> one matmul per level
        assert sum(1 for r in depth2 if r.name == "matmul") == 1
        assert sum(1 for r in depth1 if r.name == "matmul") == 2

    def test_scope_stack_restored_between_calls(self, rng):
        device = Device()
        with use_device(device):
            block = _SharedBlock(rng)
            block(Tensor(np.ones((2, 4))))
            assert device.current_scope == ()
            block(Tensor(np.ones((2, 4))))
            assert device.current_scope == ()

    def test_time_by_top_scope_aggregates_reentrant_calls(self, rng):
        device = Device()
        device.profiler.enabled = True
        with use_device(device):
            block = _Recursive(rng)
            block(Tensor(np.ones((2, 4))))
        by_scope = device.profiler.time_by_top_scope(depth=1)
        assert set(by_scope) == {("_Recursive",)}
        assert by_scope[("_Recursive",)] == pytest.approx(
            device.profiler.total_time()
        )
