"""Host cost model invariants — these encode the paper's causal story."""

import dataclasses

import pytest

from repro.device import DEFAULT_HOST_COSTS, Device, HostCostModel


class TestHostCostModel:
    def test_dgl_batching_costlier_per_graph(self):
        c = DEFAULT_HOST_COSTS
        assert c.dgl_batch_per_graph > c.pyg_batch_per_graph

    def test_dgl_batching_costlier_base(self):
        c = DEFAULT_HOST_COSTS
        assert c.dgl_batch_base > c.pyg_batch_base

    def test_heterograph_pays_per_type(self):
        assert DEFAULT_HOST_COSTS.dgl_batch_per_type > 0

    def test_update_all_overhead_dominates_frame_set(self):
        c = DEFAULT_HOST_COSTS
        assert c.dgl_update_all_overhead > 10 * c.dgl_frame_set_overhead

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_HOST_COSTS.pyg_batch_base = 0.0

    def test_custom_model_injectable(self):
        cheap = HostCostModel(dgl_update_all_overhead=0.0)
        device = Device(host_costs=cheap)
        assert device.host_costs.dgl_update_all_overhead == 0.0

    def test_all_costs_non_negative(self):
        for field in dataclasses.fields(HostCostModel):
            assert getattr(DEFAULT_HOST_COSTS, field.name) >= 0.0, field.name


class TestScopeElapsed:
    def test_scope_elapsed_accumulates_host_and_kernels(self):
        device = Device()
        with device.scope("conv1"):
            device.host(1.0)
            device.launch("k")
        assert device.scope_component_time("conv1") > 1.0

    def test_scope_component_time_with_since(self):
        device = Device()
        with device.scope("conv1"):
            device.host(1.0)
        before = dict(device.scope_elapsed)
        with device.scope("conv1"):
            device.host(2.0)
        assert device.scope_component_time("conv1", since=before) == pytest.approx(2.0)

    def test_unscoped_work_not_attributed(self):
        device = Device()
        device.host(5.0)
        assert device.scope_elapsed == {}

    def test_reset_clears_scope_elapsed(self):
        device = Device()
        with device.scope("x"):
            device.host(1.0)
        device.reset()
        assert device.scope_elapsed == {}
