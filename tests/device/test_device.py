"""Simulated device: clock, memory pool, profiler, kernel cost model."""

import gc

import numpy as np
import pytest

from repro.device import (
    Device,
    GPUSpec,
    MemoryPool,
    OutOfMemoryError,
    RTX_2080TI,
    TOY_GPU,
    current_device,
    use_device,
)
from repro.device.gpu import kernel_efficiency


class TestGPUSpec:
    def test_roofline_compute_bound(self):
        spec = GPUSpec("t", peak_flops=1e9, mem_bandwidth=1e12, memory_bytes=1, min_kernel_time=0.0)
        assert spec.kernel_time(flops=2e9, bytes_moved=0) == pytest.approx(2.0)

    def test_roofline_memory_bound(self):
        spec = GPUSpec("t", peak_flops=1e15, mem_bandwidth=1e9, memory_bytes=1, min_kernel_time=0.0)
        assert spec.kernel_time(flops=1, bytes_moved=3e9) == pytest.approx(3.0)

    def test_min_kernel_time_floor(self):
        assert RTX_2080TI.kernel_time(0, 0) == RTX_2080TI.min_kernel_time

    def test_efficiency_scales_duration(self):
        spec = GPUSpec("t", peak_flops=1e9, mem_bandwidth=1e9, memory_bytes=1, min_kernel_time=0.0)
        assert spec.kernel_time(1e9, 0, efficiency=0.5) == pytest.approx(2.0)

    def test_efficiency_validated(self):
        with pytest.raises(ValueError):
            RTX_2080TI.kernel_time(1, 1, efficiency=0.0)

    def test_transfer_time_latency_plus_bandwidth(self):
        t = RTX_2080TI.transfer_time(12e9)
        assert t == pytest.approx(RTX_2080TI.pcie_latency + 1.0)

    def test_kernel_efficiency_table(self):
        assert kernel_efficiency("gspmm_backward_x") < kernel_efficiency("matmul")
        assert kernel_efficiency("scatter_sum") < kernel_efficiency("add")


class TestClockAndLaunch:
    def test_launch_advances_host_and_gpu(self):
        dev = Device()
        dur = dev.launch("matmul", flops=1e9, bytes_moved=1e6)
        assert dev.clock.gpu_busy == pytest.approx(dur)
        assert dev.clock.elapsed == pytest.approx(dur + dev.spec.launch_overhead)

    def test_host_work_lowers_utilization(self):
        dev = Device()
        dev.launch("k", flops=1e9)
        util_before = dev.clock.utilization()
        dev.host(1.0)
        assert dev.clock.utilization() < util_before

    def test_phases_attribute_time(self):
        dev = Device()
        with dev.clock.phase("data_loading"):
            dev.host(0.5)
        with dev.clock.phase("forward"):
            dev.launch("k")
        assert dev.clock.phase_elapsed["data_loading"] == pytest.approx(0.5)
        assert dev.clock.phase_elapsed["forward"] > 0

    def test_nested_phases_inner_wins(self):
        dev = Device()
        with dev.clock.phase("outer"):
            with dev.clock.phase("inner"):
                dev.host(1.0)
        assert dev.clock.phase_elapsed.get("inner") == pytest.approx(1.0)
        assert "outer" not in dev.clock.phase_elapsed or dev.clock.phase_elapsed["outer"] == 0

    def test_snapshot_delta(self):
        dev = Device()
        dev.host(1.0)
        snap = dev.clock.snapshot()
        with dev.clock.phase("forward"):
            dev.host(2.0)
        delta = snap.delta(dev.clock)
        assert delta.elapsed == pytest.approx(2.0)
        assert delta.phase_elapsed["forward"] == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        dev = Device()
        with pytest.raises(ValueError):
            dev.clock.advance_host(-1.0)

    def test_reset_inside_phase_rejected(self):
        dev = Device()
        with pytest.raises(RuntimeError):
            with dev.clock.phase("x"):
                dev.clock.reset()

    def test_utilization_zero_when_idle(self):
        assert Device().clock.utilization() == 0.0


class TestMemoryPool:
    def test_alloc_free_peak(self):
        pool = MemoryPool(100)
        pool.alloc(60)
        pool.free(30)
        pool.alloc(20)
        assert pool.current == 50
        assert pool.peak == 60

    def test_oom(self):
        pool = MemoryPool(10)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(11)

    def test_track_frees_on_gc(self):
        pool = MemoryPool(10**6)
        arr = np.zeros(100, np.float32)
        pool.track(arr)
        assert pool.current == 400
        del arr
        gc.collect()
        assert pool.current == 0

    def test_track_dedupes(self):
        pool = MemoryPool(10**6)
        arr = np.zeros(10, np.float32)
        pool.track(arr)
        pool.track(arr)
        assert pool.current == 40

    def test_reset_peak(self):
        pool = MemoryPool(100)
        pool.alloc(80)
        pool.free(80)
        pool.reset_peak()
        assert pool.peak == 0

    def test_model_oom_on_toy_gpu(self):
        """A batch that exceeds the toy GPU's 64 MiB must raise OOM."""
        dev = Device(TOY_GPU)
        with use_device(dev):
            from repro.tensor import Tensor

            with pytest.raises(OutOfMemoryError):
                Tensor(np.zeros((80 * 1024 * 1024 // 4,), np.float32))


class TestProfiler:
    def test_records_only_when_enabled(self):
        dev = Device()
        dev.launch("a")
        dev.profiler.enabled = True
        dev.launch("b")
        assert [r.name for r in dev.profiler.records] == ["b"]

    def test_scope_tagging_and_aggregation(self):
        dev = Device()
        dev.profiler.enabled = True
        with dev.scope("net"):
            with dev.scope("conv1"):
                dev.launch("matmul", flops=1e9)
            with dev.scope("conv2"):
                dev.launch("matmul", flops=2e9)
        assert dev.profiler.time_by_scope_component("conv1") > 0
        total = dev.profiler.total_time()
        by_scope = dev.profiler.time_by_top_scope(depth=2)
        assert sum(by_scope.values()) == pytest.approx(total)

    def test_in_scope_prefix(self):
        dev = Device()
        dev.profiler.enabled = True
        with dev.scope("a"):
            with dev.scope("b"):
                dev.launch("k")
        rec = dev.profiler.records[0]
        assert rec.in_scope(("a",))
        assert rec.in_scope(("a", "b"))
        assert not rec.in_scope(("b",))

    def test_time_by_kernel(self):
        dev = Device()
        dev.profiler.enabled = True
        dev.launch("x", flops=1e9)
        dev.launch("x", flops=1e9)
        dev.launch("y")
        assert set(dev.profiler.time_by_kernel()) == {"x", "y"}


class TestDeviceContext:
    def test_use_device_swaps_and_restores(self):
        outer = current_device()
        inner = Device()
        with use_device(inner) as d:
            assert current_device() is d is inner
        assert current_device() is outer

    def test_reset_clears_everything(self):
        dev = Device()
        dev.launch("k")
        dev.profiler.enabled = True
        dev.launch("k2")
        dev.reset()
        assert dev.clock.elapsed == 0
        assert dev.profiler.records == []
