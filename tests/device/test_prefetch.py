"""Generic prefetching loader: items, ordering, and overlap accounting."""

import pytest

from repro.device import PrefetchLoader, current_device, prefetch_streams


class FakeLoader:
    """Charges a fixed host collation cost per item, like a real loader."""

    def __init__(self, n_items: int, collate_cost: float):
        self.n_items = n_items
        self.collate_cost = collate_cost

    def __len__(self):
        return self.n_items

    def __iter__(self):
        device = current_device()
        for i in range(self.n_items):
            with device.clock.phase("data_loading"):
                device.host(self.collate_cost)
            yield i


def compute(seconds: float) -> None:
    """Stand-in for the per-batch training step (serial device work)."""
    current_device().clock.advance_gpu(seconds)


class TestPrefetchLoader:
    def test_yields_same_items_in_order(self):
        assert list(PrefetchLoader(FakeLoader(5, 0.01))) == [0, 1, 2, 3, 4]

    def test_len_delegates(self):
        assert len(PrefetchLoader(FakeLoader(7, 0.01))) == 7

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            PrefetchLoader(FakeLoader(3, 0.01), depth=0)

    def test_hides_collation_behind_compute(self, fresh_device):
        """compute > collate: epoch time converges to the compute total."""
        n, collate, work = 20, 0.01, 0.02
        t0 = fresh_device.clock.elapsed
        for _ in PrefetchLoader(FakeLoader(n, collate)):
            compute(work)
        elapsed = fresh_device.clock.elapsed - t0
        # One pipeline fill (the first collation) + n compute steps.
        assert elapsed == pytest.approx(collate + n * work, rel=1e-6)

    def test_loading_dominated_epoch_costs_the_loading(self, fresh_device):
        """collate > compute: the worker becomes the critical path."""
        n, collate, work = 20, 0.03, 0.01
        t0 = fresh_device.clock.elapsed
        for _ in PrefetchLoader(FakeLoader(n, collate)):
            compute(work)
        elapsed = fresh_device.clock.elapsed - t0
        # All n collations back to back, plus the last item's compute.
        assert elapsed == pytest.approx(n * collate + work, rel=1e-6)

    def test_serial_epoch_is_sum_prefetch_is_max(self, fresh_device):
        n, collate, work = 10, 0.02, 0.02
        clock = fresh_device.clock
        t0 = clock.elapsed
        for _ in FakeLoader(n, collate):
            compute(work)
        serial = clock.elapsed - t0
        t0 = clock.elapsed
        for _ in PrefetchLoader(FakeLoader(n, collate)):
            compute(work)
        overlapped = clock.elapsed - t0
        assert serial == pytest.approx(n * (collate + work), rel=1e-6)
        assert overlapped < serial
        assert overlapped == pytest.approx(max(n * collate, n * work) + min(collate, work),
                                           rel=1e-6)

    def test_unhidden_wait_lands_in_data_loading_phase(self, fresh_device):
        clock = fresh_device.clock
        before = clock.phase_elapsed.get("data_loading", 0.0)
        for _ in PrefetchLoader(FakeLoader(5, 0.05)):
            compute(0.01)
        waited = clock.phase_elapsed.get("data_loading", 0.0) - before
        assert waited > 0.0

    def test_reuses_named_streams(self, fresh_device):
        list(PrefetchLoader(FakeLoader(3, 0.01)))
        worker, copy = prefetch_streams(fresh_device)
        assert worker.busy > 0.0
        list(PrefetchLoader(FakeLoader(3, 0.01)))
        assert prefetch_streams(fresh_device) == (worker, copy)

    def test_empty_inner_loader(self):
        assert list(PrefetchLoader(FakeLoader(0, 0.01))) == []
