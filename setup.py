"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel; this offline image
lacks `wheel`, so `python setup.py develop` provides the editable install.
"""
from setuptools import setup

setup()
