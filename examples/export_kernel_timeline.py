"""Export a Chrome-trace timeline of one profiled training step.

Profiles a single GatedGCN training batch under both frameworks and writes
``trace_pygx.json`` / ``trace_dglx.json``, loadable in chrome://tracing or
https://ui.perfetto.dev — the closest artefact to the paper's nvprof
timelines.

Run:
    python examples/export_kernel_timeline.py
"""

import numpy as np

from repro.datasets import enzymes
from repro.device import Device, use_device, write_chrome_trace
from repro.models import graph_config
from repro.nn import cross_entropy
from repro.optim import Adam


def profile(framework: str):
    ds = enzymes(seed=0, num_graphs=128)
    cfg = graph_config("gatedgcn", in_dim=ds.num_features, n_classes=ds.num_classes)
    device = Device()
    with use_device(device):
        rng = np.random.default_rng(0)
        if framework == "pygx":
            from repro.pygx import Batch, Data, build_model

            net = build_model(cfg, rng)
            inputs = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
            labels = inputs.y
        else:
            from repro.dglx import batch as dgl_batch
            from repro.dglx import build_model

            net = build_model(cfg, rng)
            inputs = dgl_batch(ds.graphs)
            labels = np.array([g.y for g in ds.graphs])
        opt = Adam(net.parameters(), lr=cfg.lr)
        device.profiler.enabled = True
        loss = cross_entropy(net(inputs), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
        path = f"trace_{framework}.json"
        write_chrome_trace(device.profiler.records, path)
        print(
            f"[{framework}] {len(device.profiler.records)} kernels, "
            f"{device.profiler.total_time() * 1e3:.2f} ms GPU time -> {path}"
        )


def main() -> None:
    for framework in ("pygx", "dglx"):
        profile(framework)
    print("open the traces in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
