"""Quickstart: train one GNN under both framework implementations.

Trains a GCN for a few epochs on the synthetic ENZYMES dataset under the
PyG-style (`repro.pygx`) and DGL-style (`repro.dglx`) frameworks, then
prints the simulated per-epoch time, its phase breakdown, peak device
memory, and GPU utilisation — the observables the paper compares.

Run:
    python examples/quickstart.py
"""

from repro.datasets import enzymes
from repro.device import Device
from repro.train import GraphClassificationTrainer


def main() -> None:
    dataset = enzymes(num_graphs=240)  # scaled-down ENZYMES for a quick demo
    print(f"dataset: {dataset}")
    print()

    for framework in ("pygx", "dglx"):
        trainer = GraphClassificationTrainer(
            framework, "gcn", dataset, batch_size=64, device=Device()
        )
        result = trainer.measure_epoch(n_epochs=3)
        phases = result.mean_phase_times()
        print(f"[{framework}] GCN on ENZYMES (batch 64)")
        print(f"  simulated epoch time : {result.mean_epoch_time * 1e3:8.2f} ms")
        for name in ("data_loading", "forward", "backward", "update"):
            print(f"    {name:<18}: {phases.get(name, 0.0) * 1e3:8.2f} ms")
        print(f"  peak device memory   : {result.peak_memory / 1e6:8.1f} MB")
        print(f"  GPU utilisation      : {result.gpu_utilization * 100:8.1f} %")
        print()

    print(
        "The DGL-style run is slower: its heterograph batching path costs\n"
        "more per graph and every update_all pays a scheduler overhead —\n"
        "the two effects the paper identifies in Section IV-C."
    )


if __name__ == "__main__":
    main()
