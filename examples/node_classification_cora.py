"""Node classification on the synthetic Cora network (Table IV protocol).

Full-batch training of any of the six models under either framework:
2 layers, Adam, 200 epochs max, test accuracy taken at the best validation
epoch.  Prints a Table-IV-style row.

Run:
    python examples/node_classification_cora.py [model] [framework] [epochs]
    python examples/node_classification_cora.py gat dglx 100
"""

import sys

from repro.datasets import cora
from repro.models import MODEL_NAMES
from repro.train import NodeClassificationTrainer


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gcn"
    framework = sys.argv[2] if len(sys.argv) > 2 else "pygx"
    epochs = int(sys.argv[3]) if len(sys.argv) > 3 else 100
    if model not in MODEL_NAMES:
        raise SystemExit(f"model must be one of {MODEL_NAMES}")

    dataset = cora()
    print(f"dataset: {dataset}")
    trainer = NodeClassificationTrainer(framework, model, dataset, max_epochs=epochs)
    result = trainer.run(seed=0)

    for record in result.epochs[:: max(epochs // 10, 1)]:
        print(
            f"epoch {record.epoch:3d}  loss {record.train_loss:6.3f}  "
            f"val acc {record.val_acc * 100:5.1f}%  "
            f"epoch time {(record.train_time + record.eval_time) * 1e3:6.2f} ms (simulated)"
        )

    print()
    print(f"Table IV row  ({dataset.name}, {model}, {framework}):")
    print(
        f"  {result.mean_full_epoch_time:.4f}s/{result.total_time:.2f}s   "
        f"test acc {result.test_acc * 100:.1f}%"
    )


if __name__ == "__main__":
    main()
