"""Multi-GPU DataParallel scaling on MNIST superpixels (Fig. 6 protocol).

Simulates per-epoch training time for GCN and GAT on 1/2/4/8 GPUs at
several batch sizes.  Loading stays on the host, compute splits across
replicas, and DataParallel's broadcast/scatter/gather/reduce transfers are
charged per iteration — reproducing the paper's finding that 2 and 4 GPUs
help only mildly and 8 GPUs can be slower.

Run:
    python examples/multi_gpu_scaling.py
"""

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.train import multi_gpu_epoch_time


def main() -> None:
    dataset = load_dataset("mnist", num_graphs=1000)
    print(f"dataset: {dataset} (subset of the 70k-graph MNIST-superpixels)")
    print()
    gpu_counts = (1, 2, 4, 8)
    for model in ("gcn", "gat"):
        rows = []
        for framework in ("pygx", "dglx"):
            for batch_size in (128, 256, 512):
                times = [
                    multi_gpu_epoch_time(
                        framework, model, dataset,
                        batch_size=batch_size, n_gpus=n, max_batches=2,
                    )
                    for n in gpu_counts
                ]
                rows.append(
                    [framework, str(batch_size)]
                    + [f"{t * 1e3:.0f}" for t in times]
                )
        print(
            format_table(
                ["framework", "batch"] + [f"{n} GPU (ms)" for n in gpu_counts],
                rows,
                title=f"{model.upper()}: simulated epoch time vs GPU count",
            )
        )
        print()


if __name__ == "__main__":
    main()
