"""Diagnose what bounds GNN training, the way Section IV-D reasons.

For one model/dataset configuration this script reports:

* the epoch phase breakdown (is loading the bottleneck?),
* the launch-bound fraction of the kernel stream (is the GPU waiting on
  dispatch?),
* the top kernels by device time (what would kernel optimisation buy?),
* the Amdahl bound for overlapping host and device work (the paper's
  suggested optimisation).

Run:
    python examples/diagnose_bottleneck.py [model] [framework] [dataset]
    python examples/diagnose_bottleneck.py gatedgcn dglx enzymes
"""

import sys

import numpy as np

from repro.datasets import load_dataset
from repro.device import (
    Device,
    launch_bound_fraction,
    overlap_bound,
    top_kernels,
    use_device,
)
from repro.models import MODEL_NAMES, graph_config
from repro.nn import cross_entropy
from repro.optim import Adam
from repro.train import GraphClassificationTrainer


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gcn"
    framework = sys.argv[2] if len(sys.argv) > 2 else "pygx"
    dataset_name = sys.argv[3] if len(sys.argv) > 3 else "enzymes"
    if model not in MODEL_NAMES:
        raise SystemExit(f"model must be one of {MODEL_NAMES}")

    num_graphs = 200 if dataset_name == "dd" else 0
    dataset = load_dataset(dataset_name, num_graphs=num_graphs)

    # 1) epoch-level breakdown
    trainer = GraphClassificationTrainer(framework, model, dataset, batch_size=128)
    run = trainer.measure_epoch(n_epochs=1)
    phases = run.mean_phase_times()
    print(f"[{framework}/{model}/{dataset_name}] epoch {run.mean_epoch_time * 1e3:.1f} ms")
    for name, value in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = value / run.mean_epoch_time * 100
        print(f"  {name:<13} {value * 1e3:7.1f} ms  ({share:4.1f}%)")

    # 2) kernel-level profile of one training step
    device = Device()
    with use_device(device):
        rng = np.random.default_rng(0)
        cfg = graph_config(model, in_dim=dataset.num_features, n_classes=dataset.num_classes)
        if framework == "pygx":
            from repro.pygx import Batch, Data, build_model

            net = build_model(cfg, rng)
            inputs = Batch.from_data_list(
                [Data.from_sample(g) for g in dataset.graphs[:128]]
            )
            labels = inputs.y
        else:
            from repro.dglx import batch as dgl_batch
            from repro.dglx import build_model

            net = build_model(cfg, rng)
            inputs = dgl_batch(dataset.graphs[:128])
            labels = np.array([g.y for g in dataset.graphs[:128]])
        opt = Adam(net.parameters(), lr=cfg.lr)
        device.profiler.enabled = True
        loss = cross_entropy(net(inputs), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()

        records = device.profiler.records
        frac = launch_bound_fraction(records, device.spec.launch_overhead)
        print(f"\nkernel stream: {len(records)} launches, "
              f"launch-bound fraction {frac * 100:.0f}%")
        print("top kernels by device time:")
        for stat in top_kernels(records, k=5):
            print(
                f"  {stat.name:<28} {stat.launches:4d} launches  "
                f"{stat.total_time * 1e6:8.0f} us"
            )
        ideal, speedup = overlap_bound(device.clock.gpu_busy, device.clock.elapsed)
        print(
            f"\noverlap bound: perfect host/device overlap would cut this step "
            f"to {ideal * 1e3:.2f} ms ({speedup:.2f}x) — the optimisation "
            "Section IV-D points at."
        )


if __name__ == "__main__":
    main()
