"""Layer-wise kernel profile of one training batch (Fig. 3 methodology).

Runs a single forward/backward/update step of every model on an ENZYMES
batch under both frameworks, with the simulated profiler enabled, and
prints kernel time attributed to conv1..conv4, pooling and the classifier
— the same observable the paper extracts with nvprof.

Run:
    python examples/profile_training_step.py
"""

from repro.bench import format_table, layerwise_profile
from repro.models import MODEL_NAMES


def main() -> None:
    scopes = ["conv1", "conv2", "conv3", "conv4", "pooling", "classifier"]
    rows = []
    for model in MODEL_NAMES:
        for framework in ("pygx", "dglx"):
            profile = layerwise_profile(
                framework, model, "enzymes", batch_size=128, num_graphs=256
            )
            rows.append(
                [model, framework]
                + [f"{profile[s] * 1e6:.0f}" for s in scopes]
            )
    print(
        format_table(
            ["model", "framework"] + [f"{s} (us)" for s in scopes],
            rows,
            title="Kernel time per scope, one training batch on ENZYMES (batch 128)",
        )
    )
    print()
    print(
        "DGL-style conv layers cost more kernel time (generic GSpMM vs dense\n"
        "primitives) while its pooling uses the segment-reduce operator —\n"
        "both observations from the paper's Fig. 3 discussion."
    )


if __name__ == "__main__":
    main()
