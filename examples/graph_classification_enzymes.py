"""Graph classification on synthetic ENZYMES (Table V protocol).

One cross-validation fold of the paper's graph-classification setup:
mini-batches of 128, Adam with ReduceLROnPlateau (factor 0.5, patience 25),
training stops when the LR decays to 1e-6 or the epoch cap is reached.

Run:
    python examples/graph_classification_enzymes.py [model] [framework] [max_epochs]
    python examples/graph_classification_enzymes.py gatedgcn dglx 60
"""

import sys

import numpy as np

from repro.datasets import enzymes, kfold_splits
from repro.models import MODEL_NAMES
from repro.train import GraphClassificationTrainer


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gin"
    framework = sys.argv[2] if len(sys.argv) > 2 else "pygx"
    max_epochs = int(sys.argv[3]) if len(sys.argv) > 3 else 120
    if model not in MODEL_NAMES:
        raise SystemExit(f"model must be one of {MODEL_NAMES}")

    dataset = enzymes()
    splits = kfold_splits(dataset.labels, 10, np.random.default_rng(0))
    train_idx, val_idx, test_idx = splits[0]
    print(
        f"{dataset} — fold 1/10: {len(train_idx)} train / "
        f"{len(val_idx)} val / {len(test_idx)} test"
    )

    trainer = GraphClassificationTrainer(
        framework, model, dataset, batch_size=128, max_epochs=max_epochs
    )
    result = trainer.run_fold(train_idx, val_idx, test_idx, seed=0)

    for record in result.epochs[::10]:
        print(
            f"epoch {record.epoch:3d}  train loss {record.train_loss:6.3f}  "
            f"val loss {record.val_loss:6.3f}  val acc {record.val_acc * 100:5.1f}%  "
            f"epoch {record.train_time * 1e3:6.1f} ms (simulated)"
        )

    phases = result.mean_phase_times()
    print()
    print(f"stopped after {result.n_epochs} epochs; test acc {result.test_acc * 100:.1f}%")
    print(f"mean epoch time {result.mean_epoch_time * 1e3:.1f} ms, of which:")
    for name in ("data_loading", "forward", "backward", "update"):
        print(f"  {name:<14} {phases.get(name, 0.0) * 1e3:7.1f} ms")
    print(f"peak device memory {result.peak_memory / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
