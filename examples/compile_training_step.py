"""Capture, optimise and replay a GNN training step (repro.compile).

Walks the full compilation story on one ENZYMES training step:

1. capture the eager kernel stream into an IR,
2. run the optimization passes (DCE, CSE, constant folding, fusion) and
   show what each eliminated,
3. train eager vs compiled and compare kernel launches, epoch time and
   loss curves (they must match exactly), and
4. trip a guard on purpose to show the eager fallback + recapture.

Run:
    python examples/compile_training_step.py
"""

import numpy as np

from repro.bench import compile_cell, format_table
from repro.compile import CompiledStep
from repro.datasets import load_dataset
from repro.tensor import Tensor, ops


def eager_vs_compiled() -> None:
    rows = []
    for model in ("gcn", "gin"):
        for framework in ("pygx", "dglx"):
            cell = compile_cell(framework, model, "enzymes", batch_size=128,
                                num_graphs=256, n_epochs=2)
            rows.append([
                model,
                framework,
                str(cell["eager_launches_per_step"]),
                str(cell["compiled_launches_per_step"]),
                f"{cell['launch_reduction'] * 100:.0f}%",
                f"{cell['speedup']:.2f}x",
                "exact" if cell["parity"] else "DIVERGED",
                f"dce={cell['pass_stats']['dce_removed']} "
                f"cse={cell['pass_stats']['cse_removed']} "
                f"fused={cell['pass_stats']['fused_members']}",
            ])
    print(format_table(
        ["model", "fw", "eager", "compiled", "saved", "epoch speedup",
         "numerics", "passes"],
        rows,
        title="Eager vs compiled training step, ENZYMES batch 128",
    ))


def guard_fallback_demo() -> None:
    print("\nGuard / fallback demo")
    print("---------------------")
    w = Tensor(np.ones((8, 8), dtype=np.float32), requires_grad=True)
    mode = {"variant": False}

    def step(x):
        h = ops.relu(ops.matmul(x, w))
        if mode["variant"]:
            h = ops.exp(h)  # control flow the signature cannot see
        return h.sum()

    compiled = CompiledStep(step)
    x = Tensor(np.ones((4, 8), dtype=np.float32))
    compiled(x)
    print(f"after capture:       {compiled.stats}")
    compiled(x)
    print(f"after replay:        {compiled.stats}")
    mode["variant"] = True
    compiled(x)  # kernel stream diverges -> fail open, drop the plan
    print(f"after guard failure: {compiled.stats} (plans={len(compiled.plans)})")
    compiled(x)  # recaptures with the new control flow
    print(f"after recapture:     {compiled.stats}")


def main() -> None:
    load_dataset("enzymes", num_graphs=256)  # warm the dataset cache
    eager_vs_compiled()
    guard_fallback_demo()
    print(
        "\nThe launch-bound regime the paper measures is exactly where fusing\n"
        "launches pays: every eliminated launch saves a fixed host-side\n"
        "overhead that no amount of GPU bandwidth can hide."
    )


if __name__ == "__main__":
    main()
