"""Serving demo: train, checkpoint, then serve open-loop ENZYMES traffic.

Trains a GCN for a few epochs (Table V protocol, shortened), saves the
checkpoint, loads it back through the serving registry, and replays a
Poisson arrival trace through the dynamic batcher — once unbatched, once
batched — followed by an over-capacity burst that exercises admission
control.

Run:
    python examples/serve_enzymes.py [framework] [rate]
    python examples/serve_enzymes.py dglx 2500
"""

import sys
import tempfile

import numpy as np

from repro.datasets import enzymes, kfold_splits
from repro.serve import (
    DynamicBatcher,
    ModelRegistry,
    ServeSimulator,
    bursty_trace,
    poisson_trace,
)
from repro.train import GraphClassificationTrainer, checkpoint_name, save_checkpoint


def describe(tag, result):
    print(
        f"{tag:<12} completed {result.completed:4d}/{result.n_requests}  "
        f"shed {result.shed:4d} {result.shed_by_reason or ''}  "
        f"p50 {result.p50 * 1e3:7.2f} ms  p99 {result.p99 * 1e3:7.2f} ms  "
        f"{result.throughput:7.1f} req/s  mean batch {result.mean_batch_size:5.2f}"
    )


def main() -> None:
    framework = sys.argv[1] if len(sys.argv) > 1 else "pygx"
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 2000.0

    dataset = enzymes()
    train_idx, val_idx, test_idx = kfold_splits(
        dataset.labels, 10, np.random.default_rng(0)
    )[0]
    print(f"training {framework}/gcn on {dataset} (4 epochs, fold 1) ...")
    trainer = GraphClassificationTrainer(framework, "gcn", dataset, max_epochs=4)
    trainer.run_fold(train_idx, val_idx, test_idx, seed=0)

    registry = ModelRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/{checkpoint_name(framework, 'gcn', 'enzymes')}"
        save_checkpoint(trainer.final_model, path)
        registry.register_checkpoint(framework, "gcn", "enzymes", path, config=trainer.config)
        inference = registry.get(framework, "gcn", "enzymes")
        print(f"serving {inference}\n")

        trace = poisson_trace(1000, rate=rate, rng=0)
        print(f"1000-request Poisson trace @ {rate:.0f} req/s, queue capacity 128:")
        for max_batch in (1, 8, 32):
            simulator = ServeSimulator(
                inference,
                DynamicBatcher(max_batch_size=max_batch, max_nodes=4096),
                queue_capacity=128,
            )
            describe(f"batch<={max_batch}", simulator.replay(dataset.graphs, trace))

        print("\nover-capacity bursts (150-request bursts, queue 32, 250 ms deadline):")
        burst = bursty_trace(450, burst_size=150, burst_rate=20000.0, idle_gap=0.05, rng=1)
        simulator = ServeSimulator(
            inference,
            DynamicBatcher(max_batch_size=8, max_nodes=1024),
            queue_capacity=32,
            deadline=0.25,
        )
        result = simulator.replay(dataset.graphs, burst)
        describe("burst", result)
        print(
            f"\nqueue never exceeded capacity (max depth {result.max_queue_depth}); "
            f"overload was shed with typed Overloaded rejections, not queued forever."
        )


if __name__ == "__main__":
    main()
