"""Ablation — fused GSpMM vs unfused gather+scatter aggregation.

DGL's core bet is kernel fusion: one GSpMM launch replaces PyG's gather,
multiply and scatter.  This bench aggregates identical features over an
identical graph both ways and compares launch counts, kernel time and the
end-to-end elapsed time including launch overhead.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.datasets import enzymes
from repro.device import Device, use_device
from repro.tensor import CSRGraph, Tensor, gspmm, index_rows, scatter_sum


def build_inputs(width: int):
    ds = enzymes(seed=0, num_graphs=128)
    from repro.pygx import Batch, Data

    batch = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch.num_nodes, width)).astype(np.float32)
    return batch.edge_index, batch.num_nodes, x


def measure(kind: str, width: int):
    edge_index, num_nodes, x = build_inputs(width)
    device = Device()
    with use_device(device):
        feats = Tensor(x)
        csr = None
        if kind == "fused":
            csr = CSRGraph.from_edge_index(edge_index[0], edge_index[1], num_nodes, num_nodes)
        device.reset()
        device.profiler.enabled = True
        if kind == "fused":
            out = gspmm(csr, feats)
        else:
            out = scatter_sum(index_rows(feats, edge_index[0]), edge_index[1], num_nodes)
        launches = len(device.profiler.records)
        kernel_time = device.profiler.total_time()
        elapsed = device.clock.elapsed
        return launches, kernel_time, elapsed, out.data


def run_ablation():
    out = {}
    for width in (32, 128):
        for kind in ("fused", "unfused"):
            out[(kind, width)] = measure(kind, width)
    return out


def test_ablation_spmm_fusion(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for (kind, width), (launches, ktime, elapsed, _) in sorted(results.items()):
        rows.append(
            [kind, str(width), str(launches), f"{ktime * 1e6:.0f}", f"{elapsed * 1e6:.0f}"]
        )
    publish(
        "ablation_spmm_fusion",
        format_table(
            ["kind", "width", "launches", "kernel (us)", "elapsed (us)"],
            rows,
            title="Ablation: fused GSpMM vs gather+scatter (ENZYMES batch, sum aggregation)",
        ),
    )

    for width in (32, 128):
        fused = results[("fused", width)]
        unfused = results[("unfused", width)]
        # identical numerics
        np.testing.assert_allclose(fused[3], unfused[3], atol=1e-3)
        # fusion wins on launch count...
        assert fused[0] < unfused[0]
        # ...but the generic sparse kernel is slower than the dense pair,
        # so raw kernel time favours the unfused pipeline (the trade the
        # paper observes between the two frameworks).
        assert fused[1] > 0 and unfused[1] > 0
