"""Fig. 2 — execution-time breakdown per epoch on DD vs batch size.

Same grid as Fig. 1 on the large-graph dataset.  The contrast the paper
draws: DD's kernels are bandwidth-bound, so growing the batch size does
*not* shrink forward+backward time the way it does on ENZYMES.
Bench scale: 250-graph DD subset (EXPERIMENTS.md) — per-batch kernel sizes,
which drive the effect, are unchanged.
"""

import pytest

from repro.bench import PHASE_ORDER, breakdown_row, breakdown_sweep, format_table
from repro.models import MODEL_NAMES

BATCH_SIZES = (64, 128, 256)
NUM_GRAPHS = 200


def run_fig2():
    return breakdown_sweep("dd", BATCH_SIZES, num_graphs=NUM_GRAPHS, n_epochs=1)


def test_fig2(benchmark, publish):
    results = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    rows = []
    for (framework, model, batch_size), run in sorted(results.items()):
        row = breakdown_row(run)
        rows.append(
            [model, framework, str(batch_size)]
            + [f"{row[p] * 1e3:.1f}" for p in PHASE_ORDER]
            + [f"{run.mean_epoch_time * 1e3:.1f}"]
        )
    publish(
        "fig2_breakdown_dd",
        format_table(
            ["model", "fw", "batch"] + [f"{p} (ms)" for p in PHASE_ORDER] + ["epoch (ms)"],
            rows,
            title=f"Fig. 2: per-epoch execution time breakdown, DD ({NUM_GRAPHS} graphs)",
        ),
    )

    for model in MODEL_NAMES:
        # DGL still slower end to end
        for batch_size in BATCH_SIZES:
            assert (
                results[("dglx", model, batch_size)].mean_epoch_time
                > results[("pygx", model, batch_size)].mean_epoch_time
            ), (model, batch_size)
        # 5) DD is bandwidth-bound: batch-size doubling moves fwd+bwd only
        # slightly (paper: "only slightly less or even larger"), unlike the
        # near-halving on ENZYMES.
        for framework in ("pygx", "dglx"):
            small = breakdown_row(results[(framework, model, 64)])
            large = breakdown_row(results[(framework, model, 256)])
            fb_small = small["forward"] + small["backward"]
            fb_large = large["forward"] + large["backward"]
            assert fb_large > 0.55 * fb_small, (framework, model)
