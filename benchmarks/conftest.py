"""Benchmark-suite fixtures and result publishing.

Every bench renders the paper-style table it reproduces, prints it, and
writes it under ``benchmarks/results/`` so the numbers survive pytest's
output capturing (EXPERIMENTS.md links to these artifacts).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def publish():
    """Return a function that prints a rendered table and writes it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _publish
