"""repro.fleet — multi-replica serving fleet benchmark.

Replays the bursty three-tenant trace against the DD/GCN fleet across the
four ``repro.bench.fleet`` sections and asserts the headline claims:

* **Replica scaling**: goodput grows monotonically 1 -> 2 -> 4 -> 8 (each
  replica runs its own host + compute timelines, so the fleet genuinely
  parallelises) and the 8-replica p99 undercuts the 1-replica p99.
* **Routing**: power-of-two-choices beats round-robin's load-blind
  rotation on p99 at the largest fleet, where DD's service-time variance
  builds queue imbalance behind slow batches.
* **Chaos**: two replica losses plus injected device faults mid-trace
  still resolve every request explicitly, per tenant (no silent loss).
* **Autoscaling**: a one-replica fleet warm-starts capacity into the
  burst and lands above the static single replica's goodput.
* **Caching**: the Zipf-skewed trace earns a nonzero LRU hit-rate.

Writes ``benchmarks/results/fleet_serving.txt`` and the schema-validated
``BENCH_fleet.json`` at the repo root (gated by
``tools/check_bench_regression.py``).
"""

import pathlib

from repro.bench import format_table
from repro.bench.fleet import (
    FLEET_COLUMNS,
    REPLICA_SWEEP,
    TRACE_REQUESTS,
    TRACE_SCALE,
    fleet_document,
    fleet_grid,
    fleet_report,
    fleet_row,
)
from repro.bench.serialize import fleet_to_json, validate_fleet_document

REPO_ROOT = pathlib.Path(__file__).parent.parent

SMOKE_REQUESTS = 150


def _by_key(cells):
    return {(c["kind"], c["policy"], c["replicas"]): c for c in cells}


def test_fleet_smoke(benchmark):
    """Fast 1-vs-2-replica run on a reduced trace (CI: ``-k smoke``)."""

    def run():
        return fleet_grid(
            kinds=("replicas",), replicas=(1, 2), n_requests=SMOKE_REQUESTS
        )

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    validate_fleet_document(fleet_document(cells))
    one, two = _by_key(cells)[("replicas", "p2c", 1)], _by_key(cells)[("replicas", "p2c", 2)]
    assert one["no_silent_loss"] and two["no_silent_loss"]
    assert two["completed"] > one["completed"]
    assert two["goodput"] > one["goodput"]


def test_fleet_serving(benchmark, publish):
    cells = benchmark.pedantic(fleet_grid, rounds=1, iterations=1)
    by_key = _by_key(cells)

    publish("fleet_serving", fleet_report(cells))
    (REPO_ROOT / "BENCH_fleet.json").write_text(
        fleet_to_json(fleet_document(cells)) + "\n"
    )

    # Every cell resolves every request, fleet-wide and per tenant.
    for cell in cells:
        key = (cell["kind"], cell["policy"], cell["replicas"])
        assert cell["no_silent_loss"], key
        assert cell["resolved"] == cell["n_requests"] == TRACE_REQUESTS, key
        for name, tenant in cell["tenants"].items():
            assert tenant["resolved"] == tenant["n_requests"], (key, name)

    # Replica scaling: goodput monotone in fleet size; the full fleet
    # also collapses the tail the single replica builds up.
    sweep = [by_key[("replicas", "p2c", n)] for n in REPLICA_SWEEP]
    for thinner, wider in zip(sweep, sweep[1:]):
        assert wider["goodput"] > thinner["goodput"], (
            thinner["replicas"], wider["replicas"],
        )
    assert sweep[-1]["p99"] < sweep[0]["p99"]
    assert sweep[-1]["completed"] == TRACE_REQUESTS

    # Routing: sampling two queues beats load-blind rotation on tail
    # latency at high load (the power-of-two-choices claim).
    largest = max(REPLICA_SWEEP)
    p2c = by_key[("policy", "p2c", largest)]
    rr = by_key[("policy", "round_robin", largest)]
    assert p2c["p99"] < rr["p99"], (p2c["p99"], rr["p99"])

    # Chaos: losses and faults happened and were handled explicitly.
    chaos = by_key[("chaos", "p2c", 4)]
    assert chaos["replica_losses"] == 2
    assert chaos["reroutes"] > 0
    assert chaos["retries"] > 0
    assert chaos["failed"] > 0 and "replica_lost" in chaos["failed_by_reason"]

    # Autoscaling: warm starts grow the fleet into the burst and beat
    # the static single replica.
    auto = by_key[("autoscale", "p2c", 1)]
    assert auto["scale_ups"] > 0
    assert auto["peak_replicas"] > 1
    assert auto["goodput"] > by_key[("replicas", "p2c", 1)]["goodput"]

    # Caching: the Zipf head hits; the report carries the rate.
    for cell in cells:
        assert cell["cache_hit_rate"] > 0.0, cell["kind"]

    # Determinism: replaying the policy section reproduces its cells
    # bit-for-bit (seeded routing, seeded trace, simulated clock).
    again = fleet_grid(kinds=("policy",))
    assert again == [c for c in cells if c["kind"] == "policy"]


def test_fleet_policy_table(publish):
    """Companion table: the policy section rendered on its own."""
    cells = fleet_grid(kinds=("policy",))
    publish(
        "fleet_policies",
        format_table(
            list(FLEET_COLUMNS),
            [fleet_row(c) for c in cells],
            title=(
                f"Routing policies at {max(REPLICA_SWEEP)} replicas "
                f"(trace scale {TRACE_SCALE:g}, {TRACE_REQUESTS} requests)"
            ),
        ),
    )
    by_policy = {c["policy"]: c for c in cells}
    assert by_policy["p2c"]["p99"] < by_policy["round_robin"]["p99"]
    assert by_policy["least_loaded"]["p99"] < by_policy["round_robin"]["p99"]
