"""repro.dist — DDP scaling vs the DataParallel baseline (Fig. 6 extended).

The paper's Fig. 6 shows single-process DataParallel barely scaling on
MNIST because serial scatter/gather and the full-batch collation eat the
per-replica compute savings.  This bench runs the modern recipe the paper
predates — DDP with per-replica loader shards, size-capped gradient
buckets all-reduced over a modelled NVLink fabric, comm overlapped with
backward, compile + prefetch on — against that baseline on the same
1 000-graph MNIST subset and the same global batch (256):

* **Scaling curve** (16 cells: GCN + GAT x pygx + dglx x 1/2/4/8
  replicas): DDP's per-epoch time must sit strictly below DataParallel's
  at every multi-replica point.
* **Parity gate** (4 cells: eager + compiled x pygx + dglx): DDP at
  ``world_size=1`` must reproduce the single-device trainer's loss
  trajectory bitwise — the wrapper is free when there is nothing to
  synchronise.

Writes ``benchmarks/results/scaling_ddp.txt`` and the machine-readable
``BENCH_scaling.json`` at the repo root (gated by
``tools/check_bench_regression.py``).
"""

import json
import pathlib

from repro.bench import (
    SCALING_COLUMNS,
    SCALING_FRAMEWORKS,
    SCALING_MODELS,
    SCALING_PARITY_COLUMNS,
    SCALING_REPLICAS,
    format_table,
    scaling_cell,
    scaling_parity_cell,
    scaling_parity_row,
    scaling_row,
    scaling_series,
)
from repro.datasets import load_dataset

REPO_ROOT = pathlib.Path(__file__).parent.parent

NUM_GRAPHS = 1000
GLOBAL_BATCH = 256
SMOKE_GRAPHS = 128
SMOKE_BATCH = 32


def run_scaling_matrix():
    dataset = load_dataset("mnist", num_graphs=NUM_GRAPHS)
    return scaling_series(dataset, global_batch=GLOBAL_BATCH)


def run_parity_matrix():
    dataset = load_dataset("mnist", num_graphs=SMOKE_GRAPHS)
    return [
        scaling_parity_cell(framework, "gcn", dataset, compile=compiled)
        for framework in SCALING_FRAMEWORKS
        for compiled in (False, True)
    ]


def _assert_parity(cells):
    for c in cells:
        key = (c["framework"], c["mode"])
        assert c["loss_bitwise_identical"], key
        assert c["test_acc_equal"], key


def test_scaling_smoke(benchmark):
    """Fast single-cell run (CI smoke job: ``-k smoke``)."""

    def run():
        dataset = load_dataset("mnist", num_graphs=SMOKE_GRAPHS)
        cell = scaling_cell("pygx", "gcn", dataset, replicas=2,
                            global_batch=SMOKE_BATCH)
        parity = scaling_parity_cell("pygx", "gcn", dataset)
        return cell, parity

    cell, parity = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cell["beats_dataparallel"], (cell["dp_epoch_time"],
                                        cell["ddp_epoch_time"])
    assert cell["comm_time"] > 0
    assert cell["collectives"] > 0
    _assert_parity([parity])


def test_scaling_ddp(benchmark, publish):
    cells = benchmark.pedantic(run_scaling_matrix, rounds=1, iterations=1)
    parity = run_parity_matrix()

    sections = [
        format_table(
            SCALING_COLUMNS,
            [scaling_row(c) for c in cells],
            title=(
                f"DDP vs DataParallel epoch time, MNIST "
                f"({NUM_GRAPHS} graphs, global batch {GLOBAL_BATCH}, "
                f"NVLink fabric)"
            ),
        ),
        format_table(
            SCALING_PARITY_COLUMNS,
            [scaling_parity_row(c) for c in parity],
            title="world_size=1 parity gate (DDP vs single-device, bitwise)",
        ),
    ]
    publish("scaling_ddp", "\n\n".join(sections))
    (REPO_ROOT / "BENCH_scaling.json").write_text(
        json.dumps(
            {
                "experiment": "scaling",
                "num_graphs": NUM_GRAPHS,
                "global_batch": GLOBAL_BATCH,
                "cells": cells,
                "parity": parity,
            },
            indent=2,
        )
        + "\n"
    )

    by_key = {(c["model"], c["framework"], c["replicas"]): c for c in cells}
    for model in SCALING_MODELS:
        for framework in SCALING_FRAMEWORKS:
            times = {r: by_key[(model, framework, r)] for r in SCALING_REPLICAS}
            for replicas, c in times.items():
                # The acceptance criterion in executable form: real DDP
                # training beats the serial-scatter DataParallel estimate
                # at every point of the curve.
                assert c["beats_dataparallel"], (model, framework, replicas)
                if replicas > 1:
                    assert c["comm_time"] > 0, (model, framework, replicas)
            # DDP keeps scaling where DataParallel flattens: each doubling
            # of replicas still cuts epoch time.
            assert times[2]["ddp_epoch_time"] < times[1]["ddp_epoch_time"]
            assert times[4]["ddp_epoch_time"] < times[2]["ddp_epoch_time"]
            assert times[8]["ddp_epoch_time"] < times[4]["ddp_epoch_time"]
    _assert_parity(parity)
