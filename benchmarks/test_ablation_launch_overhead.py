"""Ablation — kernel-launch overhead sensitivity.

Why does doubling the batch size nearly halve ENZYMES' forward+backward
time (Fig. 1) but not DD's (Fig. 2)?  Because ENZYMES' kernels are tiny —
per-epoch time is dominated by the fixed launch overhead, which scales with
the number of batches.  This bench replays the GCN epoch under GPU specs
with the launch overhead swept from 0 to 70 us and shows the batch-size
speedup appearing as overhead grows.
"""

import dataclasses

import pytest

from repro.bench import breakdown_row, format_table
from repro.datasets import enzymes
from repro.device import Device, RTX_2080TI, use_device
from repro.train import GraphClassificationTrainer

OVERHEADS_US = (0.0, 35.0, 70.0)


def fwd_bwd_time(launch_overhead_us: float, batch_size: int) -> float:
    spec = dataclasses.replace(RTX_2080TI, launch_overhead=launch_overhead_us * 1e-6)
    ds = enzymes(seed=0)
    trainer = GraphClassificationTrainer(
        "pygx", "gcn", ds, batch_size=batch_size, device=Device(spec)
    )
    result = trainer.measure_epoch(n_epochs=1)
    row = breakdown_row(result)
    return row["forward"] + row["backward"]


def run_ablation():
    out = {}
    for overhead in OVERHEADS_US:
        for batch_size in (64, 256):
            out[(overhead, batch_size)] = fwd_bwd_time(overhead, batch_size)
    return out


def test_ablation_launch_overhead(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for overhead in OVERHEADS_US:
        t64 = results[(overhead, 64)]
        t256 = results[(overhead, 256)]
        rows.append(
            [f"{overhead:.0f}", f"{t64 * 1e3:.1f}", f"{t256 * 1e3:.1f}", f"{t256 / t64:.2f}"]
        )
    publish(
        "ablation_launch_overhead",
        format_table(
            ["launch overhead (us)", "fwd+bwd @64 (ms)", "fwd+bwd @256 (ms)", "ratio"],
            rows,
            title="Ablation: ENZYMES GCN forward+backward vs launch overhead",
        ),
    )

    ratios = {o: results[(o, 256)] / results[(o, 64)] for o in OVERHEADS_US}
    # with zero launch overhead the batch size barely matters...
    assert ratios[0.0] > 0.6
    # ...and the larger the overhead, the closer to the ideal 4x reduction
    assert ratios[70.0] < ratios[35.0] < ratios[0.0]
    assert ratios[70.0] < 0.45
