"""Ablation — GPU-speed sensitivity (the paper's observation 6).

"Memory usage and GPU utilization is not the bottleneck of these models
training on ENZYMES and DD" (Section IV-D): if the GPU is not the
bottleneck, a much faster card should barely improve epoch time.  This
bench replays the GCN/ENZYMES epoch on a half-speed card, the 2080 Ti and
a 4x-speed card, and shows the epoch time moving far less than the raw
device speed — while a DD epoch (bigger kernels) responds more.
"""

import dataclasses

import pytest

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import Device, RTX_2080TI
from repro.train import GraphClassificationTrainer

SPEEDS = (0.5, 1.0, 4.0)


def epoch_time(speed: float, dataset_name: str, num_graphs: int) -> float:
    spec = dataclasses.replace(
        RTX_2080TI,
        peak_flops=RTX_2080TI.peak_flops * speed,
        mem_bandwidth=RTX_2080TI.mem_bandwidth * speed,
    )
    ds = load_dataset(dataset_name, num_graphs=num_graphs)
    trainer = GraphClassificationTrainer(
        "pygx", "gcn", ds, batch_size=128, device=Device(spec)
    )
    return trainer.measure_epoch(n_epochs=1).mean_epoch_time


def run_ablation():
    out = {}
    for dataset_name, num_graphs in (("enzymes", 0), ("dd", 200)):
        for speed in SPEEDS:
            out[(dataset_name, speed)] = epoch_time(speed, dataset_name, num_graphs)
    return out


def test_ablation_gpu_specs(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for dataset_name in ("enzymes", "dd"):
        base = results[(dataset_name, 1.0)]
        for speed in SPEEDS:
            t = results[(dataset_name, speed)]
            rows.append(
                [dataset_name, f"{speed:.1f}x", f"{t * 1e3:.1f}", f"{base / t:.2f}x"]
            )
    publish(
        "ablation_gpu_specs",
        format_table(
            ["dataset", "GPU speed", "epoch (ms)", "speedup vs 1.0x"],
            rows,
            title="Ablation: GCN epoch time vs raw GPU speed (host costs fixed)",
        ),
    )

    for dataset_name in ("enzymes", "dd"):
        half = results[(dataset_name, 0.5)]
        base = results[(dataset_name, 1.0)]
        quad = results[(dataset_name, 4.0)]
        # monotone in device speed
        assert half > base > quad
        # a 4x faster GPU buys far less than 4x end to end: the GPU is not
        # the bottleneck (loading + launch overhead are)
        assert base / quad < 2.0, dataset_name
    # DD, with its larger bandwidth-bound kernels, responds more to the
    # device speed than launch-bound ENZYMES does
    gain_dd = results[("dd", 1.0)] / results[("dd", 4.0)]
    gain_enz = results[("enzymes", 1.0)] / results[("enzymes", 4.0)]
    assert gain_dd > gain_enz
