"""Ablation — GatedGCN's explicit edge-feature path (paper observation 3).

Compares one full training step of GatedGCN *with* the DGL-mandated
edge-feature state (FC update over every edge, edge BatchNorm, edge
residual) against the PyG-style formulation that computes gates on the fly.
The delta is the cost of exactly the operation the paper blames for
GatedGCN-DGL being the slowest and most memory-hungry configuration.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.datasets import enzymes
from repro.device import Device, use_device
from repro.models import graph_config
from repro.nn import cross_entropy
from repro.optim import Adam


def step_cost(framework: str, batch_size: int):
    ds = enzymes(seed=0, num_graphs=batch_size)
    cfg = graph_config("gatedgcn", in_dim=ds.num_features, n_classes=ds.num_classes)
    device = Device()
    with use_device(device):
        rng = np.random.default_rng(0)
        if framework == "pygx":
            from repro.pygx import Batch, Data, build_model

            net = build_model(cfg, rng)
            inputs = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
            labels = inputs.y
        else:
            from repro.dglx import batch as dgl_batch
            from repro.dglx import build_model

            net = build_model(cfg, rng)
            inputs = dgl_batch(ds.graphs)
            labels = np.array([g.y for g in ds.graphs])
        opt = Adam(net.parameters(), lr=cfg.lr)
        device.memory.reset_peak()
        start = device.clock.snapshot()
        loss = cross_entropy(net(inputs), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
        return start.delta(device.clock).elapsed, device.memory.peak


def run_ablation():
    out = {}
    for batch_size in (64, 128):
        for framework in ("pygx", "dglx"):
            out[(framework, batch_size)] = step_cost(framework, batch_size)
    return out


def test_ablation_gatedgcn_edgefeat(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for batch_size in (64, 128):
        pyg_t, pyg_m = results[("pygx", batch_size)]
        dgl_t, dgl_m = results[("dglx", batch_size)]
        rows.append(
            [
                str(batch_size),
                f"{pyg_t * 1e3:.1f}/{dgl_t * 1e3:.1f}",
                f"{dgl_t / pyg_t:.2f}x",
                f"{pyg_m / 1e6:.0f}/{dgl_m / 1e6:.0f}",
                f"{dgl_m / pyg_m:.2f}x",
            ]
        )
    publish(
        "ablation_gatedgcn_edgefeat",
        format_table(
            ["batch", "step pyg/dgl (ms)", "time ratio", "peak pyg/dgl (MB)", "mem ratio"],
            rows,
            title="Ablation: GatedGCN with (dglx) vs without (pygx) the edge-feature path",
        ),
    )

    for batch_size in (64, 128):
        pyg_t, pyg_m = results[("pygx", batch_size)]
        dgl_t, dgl_m = results[("dglx", batch_size)]
        # the edge path costs roughly another model's worth of time...
        assert dgl_t > 1.3 * pyg_t, batch_size
        # ...and dominates memory (per-edge states + their gradients)
        assert dgl_m > 1.3 * pyg_m, batch_size
