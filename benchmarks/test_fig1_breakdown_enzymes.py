"""Fig. 1 — execution-time breakdown per epoch on ENZYMES vs batch size.

Six models x two frameworks x batch sizes {64, 128, 256}; each epoch is
split into data loading / forward / backward / update / other using the
simulated clock's phase attribution.
"""

import pytest

from repro.bench import PHASE_ORDER, breakdown_row, breakdown_sweep, format_table
from repro.models import MODEL_NAMES

BATCH_SIZES = (64, 128, 256)


def run_fig1():
    return breakdown_sweep("enzymes", BATCH_SIZES, n_epochs=2)


def test_fig1(benchmark, publish):
    results = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    rows = []
    for (framework, model, batch_size), run in sorted(results.items()):
        row = breakdown_row(run)
        rows.append(
            [model, framework, str(batch_size)]
            + [f"{row[p] * 1e3:.1f}" for p in PHASE_ORDER]
            + [f"{run.mean_epoch_time * 1e3:.1f}"]
        )
    publish(
        "fig1_breakdown_enzymes",
        format_table(
            ["model", "fw", "batch"] + [f"{p} (ms)" for p in PHASE_ORDER] + ["epoch (ms)"],
            rows,
            title="Fig. 1: per-epoch execution time breakdown, ENZYMES",
        ),
    )

    for model in MODEL_NAMES:
        for batch_size in BATCH_SIZES:
            pyg = breakdown_row(results[("pygx", model, batch_size)])
            dgl = breakdown_row(results[("dglx", model, batch_size)])
            # 4) loading dominated, and DGL loading >> PyG loading
            assert dgl["data_loading"] > 1.5 * pyg["data_loading"], (model, batch_size)
            # loading is the largest single phase of every DGL epoch
            assert dgl["data_loading"] == max(
                dgl[p] for p in ("data_loading", "forward", "backward", "update")
            ), (model, batch_size)
        # 5) ENZYMES is launch-bound: doubling the batch size shrinks
        # forward+backward markedly (paper: "nearly halved")
        for framework in ("pygx", "dglx"):
            small = breakdown_row(results[(framework, model, 64)])
            large = breakdown_row(results[(framework, model, 256)])
            fb_small = small["forward"] + small["backward"]
            fb_large = large["forward"] + large["backward"]
            assert fb_large < 0.6 * fb_small, (framework, model)
        # loading cost itself barely depends on the batch size
        load64 = breakdown_row(results[("pygx", model, 64)])["data_loading"]
        load256 = breakdown_row(results[("pygx", model, 256)])["data_loading"]
        assert load256 == pytest.approx(load64, rel=0.25)
