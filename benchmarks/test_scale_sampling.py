"""repro.scale — million-node sampled training under a hard memory cap.

The paper's protocol stops at graphs that fit one device; this bench runs
the large-graph regime end to end on a seeded 1M-node R-MAT graph:

* **Capped training** (4 cells: GCN + SAGE x pygx + dglx): fanout-sampled
  mini-batch training with ``prefetch=True`` and ``compile=True`` on a
  device capped at 2 GB — *below* the provable full-graph training memory
  floor of every cell, so full-graph training cannot fit while sampled
  training completes with two orders of magnitude of headroom.  The cap
  is enforced by the memory pool (allocations past it raise
  ``OutOfMemoryError``), so completion is proof of fit.
* **Partitioned inference** (pygx/gcn, k=32): full-graph logits for all
  1M nodes via degree-balanced row blocks and halo exchange, one part
  resident at a time, on the same capped device.
* **Accuracy parity** (4 cells on a 10k-node smoke graph, selectable with
  ``-k smoke``): sampled training + partitioned-inference evaluation must
  land within 2% of the full-batch baseline's test accuracy — the
  Horvitz-Thompson full-graph-degree normalisation is what closes this
  gap.

Writes ``benchmarks/results/scale_sampling.txt`` and the machine-readable
``BENCH_scale.json`` at the repo root (gated by
``tools/check_bench_regression.py``).
"""

import json
import pathlib

from repro.bench import (
    MEMORY_CAP_BYTES,
    SCALE_FRAMEWORKS,
    SCALE_MODELS,
    SCALE_PARITY_COLUMNS,
    SCALE_PART_COLUMNS,
    SCALE_TRAIN_COLUMNS,
    format_table,
    million_scale_dataset,
    scale_parity_cell,
    scale_parity_row,
    scale_partitioned_cell,
    scale_partitioned_row,
    scale_train_row,
    scale_training_cell,
    smoke_scale_dataset,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent

SMOKE_NODES = 10_000
MILLION_NODES = 1_000_000
PARITY_TOLERANCE = 0.02
PARTS = 32

#: Parity cells are shared between the smoke test (which asserts them)
#: and the full bench (which writes them into BENCH_scale.json); memoised
#: so one pytest invocation never runs the protocol twice.
_parity_cache = {}


def run_parity_matrix():
    if "cells" not in _parity_cache:
        dataset = smoke_scale_dataset(SMOKE_NODES, seed=0)
        _parity_cache["cells"] = [
            scale_parity_cell(framework, model, dataset,
                              tolerance=PARITY_TOLERANCE)
            for model in SCALE_MODELS
            for framework in SCALE_FRAMEWORKS
        ]
    return _parity_cache["cells"]


def run_million_matrix():
    dataset = million_scale_dataset(MILLION_NODES, seed=0)
    training = [
        scale_training_cell(framework, model, dataset)
        for model in SCALE_MODELS
        for framework in SCALE_FRAMEWORKS
    ]
    partitioned = [scale_partitioned_cell("pygx", "gcn", dataset, k=PARTS)]
    return training, partitioned


def _assert_parity(cells):
    assert len(cells) == len(SCALE_MODELS) * len(SCALE_FRAMEWORKS)
    for c in cells:
        key = (c["model"], c["framework"])
        # Sampled training evaluated through partitioned inference must
        # match the full-batch baseline: the sampled estimator is unbiased
        # (full-graph-degree normalisation) and the halo exchange is exact.
        assert c["within_tolerance"], (key, c["gap"])
        assert c["gap"] <= PARITY_TOLERANCE, (key, c["gap"])
        # The regime only makes sense if sampling actually shrinks the
        # working set relative to the resident full graph.
        assert c["sampled_peak_mb"] < c["full_peak_mb"], key


def test_scale_smoke_parity(benchmark):
    """Fast parity-only run (CI smoke job: ``-k smoke``)."""
    cells = benchmark.pedantic(run_parity_matrix, rounds=1, iterations=1)
    _assert_parity(cells)


def test_scale_million(benchmark, publish):
    training, partitioned = benchmark.pedantic(
        run_million_matrix, rounds=1, iterations=1
    )
    parity = run_parity_matrix()

    sections = [
        format_table(
            SCALE_TRAIN_COLUMNS,
            [scale_train_row(c) for c in training],
            title=(
                f"Sampled training, {MILLION_NODES:,}-node R-MAT, "
                f"{MEMORY_CAP_BYTES / 1e9:.0f} GB memory cap "
                f"(fanout 10x10, batch 1024)"
            ),
        ),
        format_table(
            SCALE_PART_COLUMNS,
            [scale_partitioned_row(c) for c in partitioned],
            title="Partitioned full-graph inference (halo exchange, capped device)",
        ),
        format_table(
            SCALE_PARITY_COLUMNS,
            [scale_parity_row(c) for c in parity],
            title=(
                f"Sampled-vs-full accuracy parity, {SMOKE_NODES:,}-node "
                f"R-MAT (tolerance {PARITY_TOLERANCE:.0%})"
            ),
        ),
    ]
    publish("scale_sampling", "\n\n".join(sections))
    (REPO_ROOT / "BENCH_scale.json").write_text(
        json.dumps(
            {
                "experiment": "scale",
                "memory_cap": MEMORY_CAP_BYTES,
                "training": training,
                "partitioned": partitioned,
                "parity": parity,
            },
            indent=2,
        )
        + "\n"
    )

    for c in training:
        key = (c["model"], c["framework"])
        # The memory pool enforces the cap, so these booleans are the
        # acceptance criterion in executable form: sampled fits, full
        # provably does not.
        assert c["under_cap"], key
        assert c["full_graph_exceeds_cap"], (key, c["full_graph_floor"])
        # The compiled step must actually replay (structural-signature
        # bucketing over varying sampled batch shapes).
        assert c["replays"] > 0, key
        assert c["epochs_per_sec"] > 0, key
    for c in partitioned:
        assert c["under_cap"], (c["model"], c["framework"], c["peak_memory"])
        # Row blocks are cut on the edge prefix sum: no part can exceed
        # twice the mean edge load even on a power-law graph.
        assert c["edge_balance"] < 2.0, c["edge_balance"]
    _assert_parity(parity)
