"""Streams + prefetch — executed loader/compute overlap vs the projection.

Section IV-D attributes low GPU utilisation to serial CPU-side batching and
notes that "further improvement can be achieved by overlapping CPU runtime
or data communication with GPU execution".  ``repro.bench.overlap`` has
long *projected* that speedup analytically from the serial phase breakdown;
this bench runs the overlap for real — ``GraphClassificationTrainer``
with ``prefetch=True`` pipelines collation and H2D copies on simulated
streams — and asserts the executed epoch time converges to the projection.

Matrix: GCN + GIN × pygx + dglx × eager + compiled (8 cells).  Asserts per
cell: losses and test accuracy bitwise-identical to serial, executed epoch
within 5% of ``OverlapProjection.overlapped_epoch``, epoch speedup > 1,
and GPU utilisation strictly higher than serial.

Writes ``benchmarks/results/overlap_pipeline.txt`` and the machine-readable
``BENCH_overlap.json`` at the repo root (gated by
``tools/check_bench_regression.py``).
"""

import json
import pathlib

from repro.bench import OVERLAP_COLUMNS, format_table, overlap_cell, overlap_row

REPO_ROOT = pathlib.Path(__file__).parent.parent

MODELS = ("gcn", "gin")
FRAMEWORKS = ("pygx", "dglx")
BATCH_SIZE = 16
N_EPOCHS = 2
TOLERANCE = 0.05


def run_overlap_matrix():
    return [
        overlap_cell(framework, model, "enzymes", batch_size=BATCH_SIZE,
                     n_epochs=N_EPOCHS, compiled=compiled, tolerance=TOLERANCE)
        for model in MODELS
        for framework in FRAMEWORKS
        for compiled in (False, True)
    ]


def test_overlap_pipeline(benchmark, publish):
    cells = benchmark.pedantic(run_overlap_matrix, rounds=1, iterations=1)

    text = format_table(
        OVERLAP_COLUMNS,
        [overlap_row(c) for c in cells],
        title=(
            f"Executed prefetch overlap vs projection, ENZYMES batch "
            f"{BATCH_SIZE} ({N_EPOCHS} epochs)"
        ),
    )
    publish("overlap_pipeline", text)
    (REPO_ROOT / "BENCH_overlap.json").write_text(
        json.dumps({"experiment": "overlap", "cells": cells}, indent=2) + "\n"
    )

    for c in cells:
        key = (c["model"], c["framework"], "compiled" if c["compiled"] else "eager")
        # Prefetching only moves where time is charged; the batches, the
        # op stream and the float order per batch are unchanged, so the
        # loss curves must match serial bit for bit.
        assert c["parity"], key
        assert c["serial_losses"] == c["overlapped_losses"], key
        # Executed overlap converges to the analytic bound: the projection
        # hides all loading behind compute; the pipeline leaks only the
        # first batch's fill, which amortises over the epoch's batches.
        assert c["within_projection"], (key, c["projection_gap"])
        assert c["projection_gap"] <= TOLERANCE, key
        # Hiding collation must actually save wall time and (Fig. 5's
        # lever) raise GPU utilisation — same work over less elapsed.
        assert c["speedup"] > 1.0, key
        assert c["overlapped_utilization"] > c["serial_utilization"], key

    # The paper's Fig. 1/2 contrast: DGL-style per-type collation costs
    # more than PyG's vectorised batching, so hiding it buys dglx the
    # larger speedup in every (model, mode) pair.
    by_key = {(c["model"], c["framework"], c["compiled"]): c for c in cells}
    for model in MODELS:
        for compiled in (False, True):
            assert (by_key[(model, "dglx", compiled)]["speedup"]
                    >= by_key[(model, "pygx", compiled)]["speedup"])
