"""Serving extension — dynamic batching under open-loop inference traffic.

The paper's training-side result (small-graph workloads are launch-bound,
so batching nearly halves compute time per doubling of batch size) applied
to the inference path: a 1000-request Poisson trace against trained
GCN/ENZYMES checkpoints in both frameworks, served request-at-a-time
(``b1``) versus dynamically batched (``b32``).  A second, over-capacity
bursty trace shows admission control shedding load instead of letting the
queue grow without bound.

Writes ``benchmarks/results/serving_throughput.txt`` and the machine-
readable trajectory file ``BENCH_serving.json`` at the repo root.
"""

import pathlib

import numpy as np

from repro.bench import SERVING_COLUMNS, format_table, serving_row, trained_inference_model
from repro.bench.serialize import servings_to_json
from repro.datasets import load_dataset
from repro.serve import DynamicBatcher, ModelRegistry, ServeSimulator, bursty_trace, poisson_trace
from repro.train import checkpoint_name, save_checkpoint

REPO_ROOT = pathlib.Path(__file__).parent.parent

N_REQUESTS = 1000
RATE = 2000.0  # arrivals/s — saturates unbatched serving, batched keeps up
QUEUE_CAPACITY = 128
NUM_GRAPHS = 0  # full synthetic ENZYMES


def run_serving(tmp_path):
    """Checkpoint a trained model per framework, then replay the traces."""
    registry = ModelRegistry()
    dataset = load_dataset("enzymes", num_graphs=NUM_GRAPHS)
    for framework in ("pygx", "dglx"):
        trained = trained_inference_model(framework, "gcn", "enzymes", NUM_GRAPHS)
        path = tmp_path / checkpoint_name(framework, "gcn", "enzymes")
        save_checkpoint(trained.model, path)
        registry.register_checkpoint(framework, "gcn", "enzymes", path, config=trained.config)

    trace = poisson_trace(N_REQUESTS, rate=RATE, rng=0)
    results = {}
    for framework in ("pygx", "dglx"):
        inference = registry.get(framework, "gcn", "enzymes")
        for max_batch in (1, 32):
            simulator = ServeSimulator(
                inference,
                DynamicBatcher(max_batch_size=max_batch, max_nodes=4096),
                queue_capacity=QUEUE_CAPACITY,
            )
            results[(framework, max_batch)] = simulator.replay(dataset.graphs, trace)

    # Over-capacity bursts against a small bounded queue: shedding, not
    # unbounded queue growth, is the designed failure mode.
    burst = bursty_trace(300, burst_size=150, burst_rate=20000.0, idle_gap=0.05, rng=1)
    overload = ServeSimulator(
        registry.get("pygx", "gcn", "enzymes"),
        DynamicBatcher(max_batch_size=8, max_nodes=1024),
        queue_capacity=32,
        deadline=0.25,
    ).replay(dataset.graphs, burst)
    return results, overload


def test_serving_throughput(benchmark, publish, tmp_path):
    results, overload = benchmark.pedantic(run_serving, args=(tmp_path,), rounds=1, iterations=1)

    rows = [
        [f"b{max_batch}"] + serving_row(result)
        for (_, max_batch), result in sorted(results.items())
    ]
    rows.append(["burst/b8"] + serving_row(overload))
    text = format_table(
        ["policy"] + SERVING_COLUMNS,
        rows,
        title=(
            f"Serving: {N_REQUESTS}-request Poisson @ {RATE:.0f}/s, GCN/ENZYMES "
            "(b1 = unbatched; burst = over-capacity trace, queue=32)"
        ),
    )
    publish("serving_throughput", text)
    (REPO_ROOT / "BENCH_serving.json").write_text(
        servings_to_json([results[k] for k in sorted(results)] + [overload]) + "\n"
    )

    for framework in ("pygx", "dglx"):
        unbatched = results[(framework, 1)]
        batched = results[(framework, 32)]
        # Dynamic batching amortises launch overhead: measurably higher
        # throughput and lower tail latency than request-at-a-time serving.
        assert batched.throughput > 1.5 * unbatched.throughput, framework
        assert batched.mean_batch_size > 1.5, framework
        assert batched.p99 < unbatched.p99, framework
        # The saturated unbatched server sheds; the batched one keeps up.
        assert unbatched.shed > 0, framework
        assert batched.completed == N_REQUESTS, framework
        # Collation cost is visible in the same phase the training figures
        # use, and idle/forward account for the rest.
        assert batched.phase_times["data_loading"] > 0.0
        assert batched.phase_times["forward"] > 0.0

    # Over-capacity bursts: bounded queue + typed shedding, no silent growth.
    assert overload.shed_by_reason.get("queue_full", 0) > 0
    assert overload.max_queue_depth <= 32
    assert overload.completed + overload.shed == 300

    # The same trace and checkpoints: PyG-style serving sustains higher
    # batched throughput than DGL-style (its batching path is cheaper).
    assert results[("pygx", 32)].throughput > results[("dglx", 32)].throughput
