"""Fig. 5 — GPU compute utilisation vs batch size on ENZYMES and DD.

Utilisation follows the paper's Eq. (5): GPU-busy time over total elapsed
time for the training period.
"""

import pytest

from repro.bench import breakdown_sweep, format_table
from repro.models import MODEL_NAMES

BATCH_SIZES = (64, 128, 256)


def run_fig5():
    return {
        "enzymes": breakdown_sweep("enzymes", BATCH_SIZES, n_epochs=1),
        "dd": breakdown_sweep("dd", BATCH_SIZES, num_graphs=200, n_epochs=1),
    }


def test_fig5(benchmark, publish):
    results = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    rows = []
    for dataset, grid in results.items():
        for (framework, model, batch_size), run in sorted(grid.items()):
            rows.append(
                [
                    dataset,
                    model,
                    framework,
                    str(batch_size),
                    f"{run.gpu_utilization * 100:.1f}",
                ]
            )
    publish(
        "fig5_gpu_utilization",
        format_table(
            ["dataset", "model", "fw", "batch", "util (%)"],
            rows,
            title="Fig. 5: GPU compute utilisation (Eq. 5)",
        ),
    )

    for dataset, grid in results.items():
        # 4) utilisation is low across the board (paper: mostly <= 40%).
        # Our DD subset runs hotter than the paper's DD (its loading cost
        # per graph is underestimated relative to its kernel sizes), so the
        # ceiling there is looser; see EXPERIMENTS.md.
        ceiling = 0.65 if dataset == "dd" else 0.45
        for (framework, model, batch_size), run in grid.items():
            assert run.gpu_utilization < ceiling, (dataset, framework, model, batch_size)
        # 5) DGL's utilisation sits below PyG's
        for model in MODEL_NAMES:
            for batch_size in BATCH_SIZES:
                assert (
                    grid[("dglx", model, batch_size)].gpu_utilization
                    < grid[("pygx", model, batch_size)].gpu_utilization
                ), (dataset, model, batch_size)
    # larger kernels on DD push utilisation above the ENZYMES level
    assert (
        results["dd"][("pygx", "gcn", 128)].gpu_utilization
        > results["enzymes"][("pygx", "gcn", 128)].gpu_utilization
    )
    # within DGL, GatedGCN has the highest utilisation (paper obs. 5)
    for dataset, grid in results.items():
        utils = {m: grid[("dglx", m, 128)].gpu_utilization for m in MODEL_NAMES}
        assert utils["gatedgcn"] == max(utils.values()), dataset
