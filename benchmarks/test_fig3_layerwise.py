"""Fig. 3 — layer-wise execution time of one training batch on ENZYMES.

One forward/backward/update step per model per framework with the profiler
enabled; kernel time is attributed to conv1..conv4, pooling and the MLP
classifier through the module scope stack (the nvprof/NVTX analogue).
"""

import pytest

from repro.bench import format_table, layerwise_profile
from repro.models import MODEL_NAMES

SCOPES = ["conv1", "conv2", "conv3", "conv4", "pooling", "classifier"]


def run_fig3():
    out = {}
    for model in MODEL_NAMES:
        for framework in ("pygx", "dglx"):
            out[(model, framework)] = layerwise_profile(
                framework, model, "enzymes", batch_size=128
            )
    return out


def test_fig3(benchmark, publish):
    results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    rows = []
    for (model, framework), scopes in results.items():
        rows.append(
            [model, framework]
            + [f"{scopes[s] * 1e6:.0f}" for s in SCOPES]
        )
    publish(
        "fig3_layerwise",
        format_table(
            ["model", "fw"] + [f"{s} (us)" for s in SCOPES],
            rows,
            title="Fig. 3: kernel time per layer, one ENZYMES batch (128 graphs)",
        ),
    )

    for model in MODEL_NAMES:
        pyg = results[(model, "pygx")]
        dgl = results[(model, "dglx")]
        conv_time = lambda p: sum(p[f"conv{i}"] for i in range(1, 5))
        # "the conv layers of all models provided by DGL are more
        # time-consuming" (Section IV-C)
        assert conv_time(dgl) > conv_time(pyg), model
        # "the pooling operations provided by DGL ... are also more
        # time-consuming than those provided by PyG"
        assert dgl["pooling"] > pyg["pooling"], model
        # every conv layer actually ran kernels
        for i in range(1, 5):
            assert pyg[f"conv{i}"] > 0 and dgl[f"conv{i}"] > 0
    # conv1 of DGL GIN costs at least as much as the later conv layers
    # (GSpMM on the raw input features, Section IV-C)
    gin = results[("gin", "dglx")]
    assert gin["conv1"] >= 0.8 * max(gin[f"conv{i}"] for i in (2, 3))
