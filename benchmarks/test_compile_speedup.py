"""Compilation extension — eager vs compiled training steps.

The paper's central performance finding is that small-graph GNN training is
*launch-bound*: per-kernel host overhead, not GPU compute, sets the pace.
``repro.compile`` is the corresponding optimisation lever — capture the
step's kernel stream, run DCE/CSE/folding/fusion, and replay the fused
schedule — so this bench measures what that lever buys on the Table V
workload: GCN and GIN on ENZYMES (batch 128) under both framework packs.

Asserts the shape conclusions: every cell cuts kernel launches by >= 40%,
every compiled epoch is faster than its eager twin, and the loss curves
match eager exactly (replay re-executes the same numpy program; only the
performance accounting changes).

Writes ``benchmarks/results/compile_speedup.txt`` and the machine-readable
``BENCH_compile.json`` at the repo root.
"""

import json
import pathlib

import numpy as np

from repro.bench import compile_cell, format_table

REPO_ROOT = pathlib.Path(__file__).parent.parent

MODELS = ("gcn", "gin")
FRAMEWORKS = ("pygx", "dglx")
BATCH_SIZE = 128
NUM_GRAPHS = 256
N_EPOCHS = 2


def run_compile_matrix():
    return [
        compile_cell(framework, model, "enzymes", batch_size=BATCH_SIZE,
                     num_graphs=NUM_GRAPHS, n_epochs=N_EPOCHS)
        for model in MODELS
        for framework in FRAMEWORKS
    ]


def test_compile_speedup(benchmark, publish):
    cells = benchmark.pedantic(run_compile_matrix, rounds=1, iterations=1)

    rows = [
        [
            c["model"],
            c["framework"],
            str(c["eager_launches_per_step"]),
            str(c["compiled_launches_per_step"]),
            f"{c['launch_reduction'] * 100:.0f}%",
            f"{c['eager_epoch_time'] * 1e3:.2f}",
            f"{c['compiled_epoch_time'] * 1e3:.2f}",
            f"{c['speedup']:.2f}x",
            "exact" if c["parity"] else "DIVERGED",
        ]
        for c in cells
    ]
    text = format_table(
        ["model", "fw", "eager", "compiled", "saved", "eager(ms)",
         "compiled(ms)", "speedup", "numerics"],
        rows,
        title=(
            f"Compiled vs eager training step, ENZYMES batch {BATCH_SIZE} "
            f"({N_EPOCHS} epochs, {NUM_GRAPHS} graphs)"
        ),
    )
    publish("compile_speedup", text)
    (REPO_ROOT / "BENCH_compile.json").write_text(
        json.dumps({"experiment": "compile", "cells": cells}, indent=2) + "\n"
    )

    for c in cells:
        key = (c["model"], c["framework"])
        # Numerics are eager-exact by construction: replay re-runs the same
        # numpy program, so any divergence means a guard silently misfired.
        assert c["parity"], key
        assert np.allclose(c["eager_losses"], c["compiled_losses"],
                           rtol=1e-6, atol=0.0), key
        # Acceptance bar: >= 40% fewer kernel launches per training step.
        assert c["launch_reduction"] >= 0.40, key
        # Fewer launches -> less host overhead -> faster epochs, and the
        # plan replays without tripping guards after its single capture.
        assert c["compiled_epoch_time"] < c["eager_epoch_time"], key
        assert c["guard_failures"] == 0, key
        assert c["replays"] > 0, key

    # The win is biggest where launch overhead dominates: elementwise-heavy
    # GIN sheds a larger launch fraction than GCN in the same framework.
    by_key = {(c["model"], c["framework"]): c for c in cells}
    for framework in FRAMEWORKS:
        assert (by_key[("gin", framework)]["launch_reduction"]
                >= by_key[("gcn", framework)]["launch_reduction"])
