"""Table I — dataset statistics.

Generates every synthetic dataset and prints its statistics next to the
paper's values.  MNIST is sampled (1 500 of the 70 000 graphs) for the
per-graph averages; the graph count column reports the configured full
size, as documented in EXPERIMENTS.md.
"""

from repro.bench import format_table
from repro.datasets import FULL_MNIST_SIZE, compute_statistics, load_dataset

PAPER = {
    "Cora": (1, 2708, 5429, 1433, 7),
    "PubMed": (1, 19717, 44338, 500, 3),
    "ENZYMES": (600, 32.63, 62.14, 18, 6),
    "MNIST": (70000, 70.57, 564.53, 1, 10),
    "DD": (1178, 284.32, 715.66, 89, 2),
}


def run_table1():
    rows = []
    for name in ("cora", "pubmed", "enzymes", "mnist", "dd"):
        num_graphs = 1500 if name == "mnist" else 0
        ds = load_dataset(name, num_graphs=num_graphs)
        reported = FULL_MNIST_SIZE if name == "mnist" else 0
        stats = compute_statistics(ds, reported_num_graphs=reported)
        paper = PAPER[stats.name]
        rows.append(
            stats.row()
            + [f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}/{paper[4]}"]
        )
    return rows


def test_table1(benchmark, publish):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "#Graph", "#Nodes(Avg)", "#Edges(Avg)", "#Feature", "#Classes", "paper (G/N/E/F/C)"],
        rows,
        title="Table I: dataset statistics (measured vs paper)",
    )
    publish("table1_dataset_stats", table)
    # shape assertions: every measured column within tolerance of the paper
    by_name = {r[0]: r for r in rows}
    assert float(by_name["ENZYMES"][2]) == __import__("pytest").approx(32.63, rel=0.12)
    assert float(by_name["DD"][2]) == __import__("pytest").approx(284.32, rel=0.12)
    assert float(by_name["MNIST"][2]) == __import__("pytest").approx(70.57, rel=0.15)
    assert int(by_name["Cora"][1]) == 1
    assert int(by_name["PubMed"][4]) == 500
