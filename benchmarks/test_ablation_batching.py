"""Ablation — batching strategy in isolation.

The paper attributes most of the framework gap to data processing.  This
bench isolates the two loaders (no model, no training): PyG-style
vectorised collation vs DGL-style per-type heterograph collation over the
same ENZYMES graphs.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.datasets import enzymes
from repro.device import Device, use_device

BATCH_SIZES = (64, 128, 256)


def loader_cost(framework: str, graphs, batch_size: int) -> float:
    device = Device()
    with use_device(device):
        if framework == "pygx":
            from repro.pygx import DataLoader

            loader = DataLoader(graphs, batch_size)
            for _ in loader:
                pass
        else:
            from repro.dglx import GraphDataLoader

            loader = GraphDataLoader(graphs, batch_size)
            for _ in loader:
                pass
        return device.clock.elapsed


def run_ablation():
    graphs = enzymes(seed=0).graphs
    out = {}
    for framework in ("pygx", "dglx"):
        for batch_size in BATCH_SIZES:
            out[(framework, batch_size)] = loader_cost(framework, graphs, batch_size)
    return out


def test_ablation_batching(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for batch_size in BATCH_SIZES:
        pyg = results[("pygx", batch_size)]
        dgl = results[("dglx", batch_size)]
        rows.append(
            [str(batch_size), f"{pyg * 1e3:.1f}", f"{dgl * 1e3:.1f}", f"{dgl / pyg:.2f}x"]
        )
    publish(
        "ablation_batching",
        format_table(
            ["batch", "pygx (ms)", "dglx (ms)", "dgl/pyg"],
            rows,
            title="Ablation: collating all 600 ENZYMES graphs, loader only",
        ),
    )

    for batch_size in BATCH_SIZES:
        ratio = results[("dglx", batch_size)] / results[("pygx", batch_size)]
        # heterograph batching costs a multiple of the vectorised path
        assert 1.5 < ratio < 6.0, batch_size
    # total collation cost is per-graph dominated: batch size barely matters
    assert results[("pygx", 256)] == pytest.approx(results[("pygx", 64)], rel=0.3)
