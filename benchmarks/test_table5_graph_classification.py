"""Table V — graph classification on ENZYMES and DD.

Six models x two frameworks x two datasets with the paper's protocol
(batch 128, Adam + plateau decay).  Reduced for bench runtime
(EXPERIMENTS.md): 1 of 10 CV folds and a 15-epoch cap on ENZYMES; 1 fold,
a 6-epoch cap and a 200-graph subset on DD.  Epoch *times* are unaffected
by the caps; accuracies are close to converged because the synthetic
classes separate quickly.
"""

import pytest

from repro.bench import format_seconds, format_table, table5_cell
from repro.models import MODEL_NAMES

PAPER_EPOCH_S = {  # (dataset, model, framework) -> paper epoch seconds
    ("enzymes", "gcn", "pygx"): 0.087, ("enzymes", "gcn", "dglx"): 0.164,
    ("enzymes", "gat", "pygx"): 0.117, ("enzymes", "gat", "dglx"): 0.195,
    ("enzymes", "sage", "pygx"): 0.071, ("enzymes", "sage", "dglx"): 0.157,
    ("enzymes", "gin", "pygx"): 0.082, ("enzymes", "gin", "dglx"): 0.155,
    ("enzymes", "monet", "pygx"): 0.123, ("enzymes", "monet", "dglx"): 0.196,
    ("enzymes", "gatedgcn", "pygx"): 0.104, ("enzymes", "gatedgcn", "dglx"): 0.216,
    ("dd", "gcn", "pygx"): 0.361, ("dd", "gcn", "dglx"): 0.853,
    ("dd", "gat", "pygx"): 0.627, ("dd", "gat", "dglx"): 1.042,
    ("dd", "sage", "pygx"): 0.262, ("dd", "sage", "dglx"): 0.603,
    ("dd", "gin", "pygx"): 0.484, ("dd", "gin", "dglx"): 0.882,
    ("dd", "monet", "pygx"): 0.434, ("dd", "monet", "dglx"): 0.758,
    ("dd", "gatedgcn", "pygx"): 0.355, ("dd", "gatedgcn", "dglx"): 1.255,
}

SETTINGS = {
    "enzymes": dict(num_graphs=0, max_epochs=15, max_folds=1),
    "dd": dict(num_graphs=200, max_epochs=6, max_folds=1),
}


def run_table5():
    results = {}
    for dataset, kwargs in SETTINGS.items():
        for model in MODEL_NAMES:
            for framework in ("pygx", "dglx"):
                results[(dataset, model, framework)] = table5_cell(
                    framework, model, dataset, batch_size=128, **kwargs
                )
    return results


def test_table5(benchmark, publish):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    rows = []
    for (dataset, model, framework), cell in results.items():
        rows.append(
            [
                dataset,
                model,
                framework,
                f"{cell.epoch_time * 1e3:.0f}ms",
                format_seconds(cell.total_time),
                f"{cell.acc_mean * 100:.1f}+-{cell.acc_std * 100:.1f}",
                f"{PAPER_EPOCH_S[(dataset, model, framework)] * 1e3:.0f}ms",
            ]
        )
    publish(
        "table5_graph_classification",
        format_table(
            ["dataset", "model", "fw", "epoch", "total", "acc", "paper epoch"],
            rows,
            title="Table V: graph classification (reduced folds/epochs, simulated times)",
        ),
    )

    for dataset in SETTINGS:
        dgl_times = {}
        for model in MODEL_NAMES:
            pyg = results[(dataset, model, "pygx")]
            dgl = results[(dataset, model, "dglx")]
            # 1) PyG-style significantly faster per epoch for all models.
            # The margin is smallest for GAT on DD (compute-dominated
            # epochs dilute the loading gap), so the floor is 1.15x there.
            floor = 1.15 if dataset == "dd" else 1.25
            assert dgl.epoch_time > floor * pyg.epoch_time, (dataset, model)
            # 9) similar accuracy across frameworks (DD's reduced fold has
            # a 20-graph test set, so its tolerance is wider)
            tol = 0.30 if dataset == "dd" else 0.20
            assert abs(pyg.acc_mean - dgl.acc_mean) < tol, (dataset, model)
            dgl_times[model] = dgl.epoch_time
        # 2) GatedGCN under DGL is the slowest configuration
        assert dgl_times["gatedgcn"] == max(dgl_times.values()), dataset

    # DD training is far more expensive than ENZYMES *per graph* (bigger
    # graphs, wider features); the bench's DD subset has fewer graphs per
    # epoch than full ENZYMES, so the comparison must be per-graph.
    dd_train_graphs = 0.8 * 200  # 1 fold of the 200-graph subset
    enz_train_graphs = 0.8 * 600
    dd_per_graph = results[("dd", "gcn", "pygx")].epoch_time / dd_train_graphs
    enz_per_graph = results[("enzymes", "gcn", "pygx")].epoch_time / enz_train_graphs
    assert dd_per_graph > 1.5 * enz_per_graph
    # epoch-time ratio vs the paper: same winner, comparable factor
    for (dataset, model, framework), cell in results.items():
        if dataset == "enzymes":
            paper = PAPER_EPOCH_S[(dataset, model, framework)]
            assert cell.epoch_time == pytest.approx(paper, rel=0.8), (
                dataset, model, framework,
            )
