"""Fig. 4 — peak device memory vs batch size on ENZYMES and DD.

Same grid as Fig. 1/2, reading the memory pool's high-water mark instead of
the clock (the nvidia-smi analogue).
"""

import pytest

from repro.bench import breakdown_sweep, format_table
from repro.models import ANISOTROPIC, MODEL_NAMES

BATCH_SIZES = (64, 128, 256)


def run_fig4():
    return {
        "enzymes": breakdown_sweep("enzymes", BATCH_SIZES, n_epochs=1),
        "dd": breakdown_sweep("dd", BATCH_SIZES, num_graphs=200, n_epochs=1),
    }


def test_fig4(benchmark, publish):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    rows = []
    for dataset, grid in results.items():
        for (framework, model, batch_size), run in sorted(grid.items()):
            rows.append(
                [dataset, model, framework, str(batch_size), f"{run.peak_memory / 1e6:.0f}"]
            )
    publish(
        "fig4_memory",
        format_table(
            ["dataset", "model", "fw", "batch", "peak (MB)"],
            rows,
            title="Fig. 4: peak simulated device memory",
        ),
    )

    for dataset, grid in results.items():
        # 6) GatedGCN under DGL uses by far the most memory
        for batch_size in BATCH_SIZES:
            dgl_peaks = {m: grid[("dglx", m, batch_size)].peak_memory for m in MODEL_NAMES}
            assert dgl_peaks["gatedgcn"] == max(dgl_peaks.values()), (dataset, batch_size)
            assert (
                grid[("dglx", "gatedgcn", batch_size)].peak_memory
                > 1.3 * grid[("pygx", "gatedgcn", batch_size)].peak_memory
            ), (dataset, batch_size)
        # 1) anisotropic models grow faster with batch size than GCN
        for framework in ("pygx", "dglx"):
            for model in ANISOTROPIC:
                growth_aniso = (
                    grid[(framework, model, 256)].peak_memory
                    / grid[(framework, model, 64)].peak_memory
                )
                assert growth_aniso > 1.5, (dataset, framework, model)
        # 3) memory stays far below the 11 GB card for the isotropic models
        for model in ("gcn", "gin", "sage"):
            assert grid[("pygx", model, 128)].peak_memory < 2e9, (dataset, model)
    # DD needs more memory than ENZYMES at equal batch size (bigger graphs)
    assert (
        results["dd"][("pygx", "gat", 128)].peak_memory
        > results["enzymes"][("pygx", "gat", 128)].peak_memory
    )
