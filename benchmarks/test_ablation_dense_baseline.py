"""Ablation — GNN framework vs general-purpose (dense) DL framework.

The paper's premise (Section I): GNN frameworks beat GNNs written on
general-purpose DL frameworks.  This bench trains the *same* GCN three
ways on identical DD batches — dense block-diagonal adjacency
(`repro.densex`), PyG-style scatter, DGL-style GSpMM — and compares one
training step's simulated time and peak memory.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import Device, use_device
from repro.models import graph_config
from repro.nn import cross_entropy
from repro.optim import Adam

# DD graphs average 284 nodes, so these batches are ~4500 and ~9000 nodes.
# The dense adjacency grows quadratically while the sparse frameworks grow
# linearly; the bench asserts the divergence (paper-scale batches of 128
# would not even fit wall-clock in numpy for the dense form).
BATCHES = (16, 32)


def step_cost(kind: str, batch: int):
    ds = load_dataset("dd", num_graphs=batch)
    cfg = graph_config("gcn", in_dim=ds.num_features, n_classes=ds.num_classes)
    device = Device()
    with use_device(device):
        rng = np.random.default_rng(0)
        if kind == "dense":
            from repro.densex import DenseGCNNet, dense_batch

            net = DenseGCNNet(cfg, rng)
            inputs = dense_batch(ds.graphs)
            labels = inputs.y
        elif kind == "pygx":
            from repro.pygx import Batch, Data, build_model

            net = build_model(cfg, rng)
            inputs = Batch.from_data_list([Data.from_sample(g) for g in ds.graphs])
            labels = inputs.y
        else:
            from repro.dglx import batch as dgl_batch
            from repro.dglx import build_model

            net = build_model(cfg, rng)
            inputs = dgl_batch(ds.graphs)
            labels = np.array([g.y for g in ds.graphs])
        opt = Adam(net.parameters(), lr=cfg.lr)
        device.memory.reset_peak()
        start = device.clock.snapshot()
        loss = cross_entropy(net(inputs), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
        return start.delta(device.clock).elapsed, device.memory.peak


def run_ablation():
    return {
        (kind, batch): step_cost(kind, batch)
        for kind in ("dense", "pygx", "dglx")
        for batch in BATCHES
    }


def test_ablation_dense_baseline(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [kind, str(batch), f"{t * 1e3:.1f}", f"{mem / 1e6:.0f}"]
        for (kind, batch), (t, mem) in results.items()
    ]
    publish(
        "ablation_dense_baseline",
        format_table(
            ["implementation", "batch", "step (ms)", "peak (MB)"],
            rows,
            title="Ablation: GCN step on one DD batch, dense vs GNN frameworks",
        ),
    )

    # compute: the quadratic matmuls overtake per-edge kernels decisively
    assert results[("dense", 32)][0] > 1.5 * results[("pygx", 32)][0]
    # memory: below the crossover the dense form can even be smaller (the
    # sparse pipelines hold per-edge activations), but the quadratic term
    # overtakes by ~9000 nodes and diverges from there
    ratio_small = results[("dense", 16)][1] / results[("pygx", 16)][1]
    ratio_large = results[("dense", 32)][1] / results[("pygx", 32)][1]
    assert ratio_large > 1.2
    assert ratio_large > 1.5 * ratio_small
