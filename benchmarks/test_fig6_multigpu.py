"""Fig. 6 — multi-GPU (DataParallel) epoch time for GCN and GAT on MNIST.

1/2/4/8 simulated GPUs at batch sizes {128, 256, 512} under both
frameworks, on a 1 000-graph subset of MNIST-superpixels (EXPERIMENTS.md).
"""

import pytest

from repro.bench import format_table, multigpu_series

GPUS = (1, 2, 4, 8)
BATCHES = (128, 256, 512)


def run_fig6():
    return multigpu_series(
        models=("gcn", "gat"),
        batch_sizes=BATCHES,
        gpu_counts=GPUS,
        num_graphs=1000,
        max_batches=2,
    )


def test_fig6(benchmark, publish):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    rows = []
    for model in ("gcn", "gat"):
        for framework in ("pygx", "dglx"):
            for batch_size in BATCHES:
                times = [results[(framework, model, batch_size, n)] for n in GPUS]
                rows.append(
                    [model, framework, str(batch_size)]
                    + [f"{t * 1e3:.0f}" for t in times]
                )
    publish(
        "fig6_multigpu",
        format_table(
            ["model", "fw", "batch"] + [f"{n}gpu (ms)" for n in GPUS],
            rows,
            title="Fig. 6: simulated epoch time vs GPU count, MNIST (1000 graphs)",
        ),
    )

    for model in ("gcn", "gat"):
        for framework in ("pygx", "dglx"):
            for batch_size in BATCHES:
                t = {n: results[(framework, model, batch_size, n)] for n in GPUS}
                # 8) 1 -> 2 -> 4 GPUs: slight decrease (or at worst flat)
                assert t[2] < t[1] * 1.10, (model, framework, batch_size)
                assert t[4] < t[2] * 1.10, (model, framework, batch_size)
                # 4 -> 8 GPUs: no meaningful gain, sometimes a regression
                assert t[8] > t[4] * 0.8, (model, framework, batch_size)
                # the end-to-end gain is modest because loading dominates
                assert t[4] > 0.5 * t[1], (model, framework, batch_size)
