"""Extension — the batching optimisations the paper's conclusion asks for.

Two remedies for the loading-dominated epochs of Fig. 1/2:

* a batch-caching loader (collate once, replay every epoch), and
* a pipelined loader (projection: loading overlapped with device work).

Both are evaluated on GCN/ENZYMES, the paper's canonical loading-bound
configuration.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bench.overlap import project_overlap
from repro.datasets import enzymes
from repro.device import Device, use_device
from repro.models import graph_config
from repro.nn import cross_entropy
from repro.optim import Adam
from repro.train import GraphClassificationTrainer


def epochs_with_loader(loader_kind: str, n_epochs: int = 3):
    ds = enzymes(seed=0)
    cfg = graph_config("gcn", in_dim=ds.num_features, n_classes=ds.num_classes)
    device = Device()
    with use_device(device):
        from repro.pygx import DataLoader, build_model
        from repro.pygx.cached_loader import CachedDataLoader

        rng = np.random.default_rng(0)
        net = build_model(cfg, rng)
        opt = Adam(net.parameters(), lr=cfg.lr)
        if loader_kind == "standard":
            loader = DataLoader(ds.graphs, batch_size=128, shuffle=False, rng=rng)
        else:
            loader = CachedDataLoader(ds.graphs, batch_size=128, rng=rng)
        times = []
        clock = device.clock
        for _ in range(n_epochs):
            before = clock.snapshot()
            for batch in loader:
                with clock.phase("forward"):
                    loss = cross_entropy(net(batch), batch.y)
                with clock.phase("backward"):
                    opt.zero_grad()
                    loss.backward()
                with clock.phase("update"):
                    opt.step()
            times.append(before.delta(clock).elapsed)
        return times, clock.utilization()


def run_extension():
    standard_times, standard_util = epochs_with_loader("standard")
    cached_times, cached_util = epochs_with_loader("cached")
    trainer = GraphClassificationTrainer("pygx", "gcn", enzymes(seed=0), batch_size=128)
    overlap = project_overlap(trainer.measure_epoch(n_epochs=1))
    return {
        "standard": (standard_times, standard_util),
        "cached": (cached_times, cached_util),
        "overlap": overlap,
    }


def test_extension_batching_optimizations(benchmark, publish):
    results = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    standard_times, standard_util = results["standard"]
    cached_times, cached_util = results["cached"]
    overlap = results["overlap"]

    rows = [
        ["standard loader", f"{np.mean(standard_times) * 1e3:.1f}", f"{standard_util * 100:.1f}"],
        [
            "cached loader (steady state)",
            f"{np.mean(cached_times[1:]) * 1e3:.1f}",
            f"{cached_util * 100:.1f}",
        ],
        [
            "pipelined loader (projected)",
            f"{overlap.overlapped_epoch * 1e3:.1f}",
            "-",
        ],
    ]
    publish(
        "extension_batching_optimizations",
        format_table(
            ["strategy", "epoch (ms)", "util (%)"],
            rows,
            title="Extension: batching optimisations, GCN on ENZYMES (batch 128)",
        ),
    )

    # caching pays off from the second epoch: loading all but disappears
    assert np.mean(cached_times[1:]) < 0.7 * np.mean(standard_times)
    # first (cache-filling) epoch costs about the same as a standard epoch
    assert cached_times[0] == pytest.approx(standard_times[0], rel=0.15)
    # removing the serial loading raises utilisation
    assert cached_util > standard_util
    # the overlap projection bounds between half and full serial time
    assert 0.4 * overlap.serial_epoch < overlap.overlapped_epoch < overlap.serial_epoch
