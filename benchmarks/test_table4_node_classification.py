"""Table IV — node classification on Cora and PubMed.

Six models x two frameworks x two datasets, full-batch training.
Reduced from the paper's protocol for bench runtime (EXPERIMENTS.md):
30 epochs instead of 200 and 1-2 seeds (the paper's +-s.d. column is
reproduced at 2 seeds for Cora only).  Simulated epoch time includes the
per-epoch validation pass, matching the pipelines the paper instruments.
"""

import numpy as np
import pytest

from repro.bench import format_seconds, format_table, table4_cell
from repro.models import MODEL_NAMES
from repro.train import compare_accuracies

EPOCHS = 30
PAPER_EPOCH_MS = {  # (dataset, model, framework) -> paper epoch time (ms)
    ("cora", "gcn", "pygx"): 4.9, ("cora", "gcn", "dglx"): 6.3,
    ("cora", "gat", "pygx"): 7.2, ("cora", "gat", "dglx"): 8.2,
    ("cora", "sage", "pygx"): 3.8, ("cora", "sage", "dglx"): 6.8,
    ("cora", "gin", "pygx"): 5.8, ("cora", "gin", "dglx"): 6.1,
    ("cora", "monet", "pygx"): 6.8, ("cora", "monet", "dglx"): 8.6,
    ("cora", "gatedgcn", "pygx"): 5.4, ("cora", "gatedgcn", "dglx"): 10.1,
    ("pubmed", "gcn", "pygx"): 5.3, ("pubmed", "gcn", "dglx"): 7.1,
    ("pubmed", "gat", "pygx"): 8.2, ("pubmed", "gat", "dglx"): 9.2,
    ("pubmed", "sage", "pygx"): 5.0, ("pubmed", "sage", "dglx"): 6.3,
    ("pubmed", "gin", "pygx"): 7.0, ("pubmed", "gin", "dglx"): 7.9,
    ("pubmed", "monet", "pygx"): 7.9, ("pubmed", "monet", "dglx"): 9.4,
    ("pubmed", "gatedgcn", "pygx"): 6.3, ("pubmed", "gatedgcn", "dglx"): 17.4,
}


def run_table4():
    results = {}
    for dataset in ("cora", "pubmed"):
        for model in MODEL_NAMES:
            for framework in ("pygx", "dglx"):
                seeds = (0, 1) if dataset == "cora" else (0,)
                results[(dataset, model, framework)] = table4_cell(
                    framework, model, dataset, max_epochs=EPOCHS, seeds=seeds
                )
    return results


def test_table4(benchmark, publish):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    rows = []
    for (dataset, model, framework), cell in results.items():
        paper_ms = PAPER_EPOCH_MS[(dataset, model, framework)]
        rows.append(
            [
                dataset,
                model,
                framework,
                f"{cell.epoch_time * 1e3:.2f}ms",
                format_seconds(cell.total_time),
                f"{cell.acc_mean * 100:.1f}+-{cell.acc_std * 100:.1f}",
                f"{paper_ms:.1f}ms",
            ]
        )
    parity_lines = ["", "accuracy parity (pygx vs dglx, Welch t-test where seeds allow):"]
    for dataset in ("cora", "pubmed"):
        for model in MODEL_NAMES:
            pyg = results[(dataset, model, "pygx")]
            dgl = results[(dataset, model, "dglx")]
            cmp = compare_accuracies(
                [r.test_acc for r in pyg.runs], [r.test_acc for r in dgl.runs]
            )
            verdict = "indistinguishable" if cmp.indistinguishable() else "differs"
            parity_lines.append(
                f"  {dataset:7s} {model:9s} gap={cmp.mean_gap * 100:4.1f}pp "
                f"p={cmp.p_value:.2f} -> {verdict}"
            )
    publish(
        "table4_node_classification",
        format_table(
            ["dataset", "model", "fw", "epoch", "total", "acc", "paper epoch"],
            rows,
            title=f"Table IV: node classification ({EPOCHS} epochs, simulated times)",
        )
        + "\n".join(parity_lines),
    )

    # Shape assertions (DESIGN.md section 5)
    for dataset in ("cora", "pubmed"):
        for model in MODEL_NAMES:
            pyg = results[(dataset, model, "pygx")]
            dgl = results[(dataset, model, "dglx")]
            # 1) PyG-style trains faster for every model
            assert pyg.epoch_time < dgl.epoch_time, (dataset, model)
            # 9) the two frameworks reach similar accuracy
            assert abs(pyg.acc_mean - dgl.acc_mean) < 0.15, (dataset, model)
        # 2) GatedGCN-DGL is the slowest DGL model per dataset (obs. 3)
        dgl_times = {m: results[(dataset, m, "dglx")].epoch_time for m in MODEL_NAMES}
        assert dgl_times["gatedgcn"] == max(dgl_times.values())
    # 3) GatedGCN's DGL/PyG ratio is the largest gap (roughly 2x)
    ratio = (
        results[("cora", "gatedgcn", "dglx")].epoch_time
        / results[("cora", "gatedgcn", "pygx")].epoch_time
    )
    assert ratio > 1.4
    # accuracy lands in a plausible band (paper: 74-83 on Cora) for the
    # models whose learning rate converges within the 30-epoch bench cap;
    # SAGE and GatedGCN (lr = 1e-3) are undertrained at this reduction and
    # only their cross-framework parity is asserted (see EXPERIMENTS.md).
    for model in ("gcn", "gat", "gin", "monet"):
        acc = results[("cora", model, "pygx")].acc_mean
        assert 0.4 < acc < 0.95, model
