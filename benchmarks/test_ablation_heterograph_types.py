"""Ablation — the heterograph tax.

Section IV-C: "the implementation of data processing in DGL considers the
type of nodes and edges ... all graphs are treated as heterogeneous graphs
during data processing, which brings extra-time loss."

This bench collates the *same* ENZYMES batches recast as k-relation
heterographs (identical structure, k = 1/2/4/8 edge types) and shows the
batching cost growing with the type vocabulary — the mechanism behind
DGL's loader disadvantage even on homogeneous data.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.datasets import enzymes
from repro.device import Device, use_device
from repro.dglx.hetero_multitype import as_k_type_graph, batch_hetero

TYPE_COUNTS = (1, 2, 4, 8)
N_GRAPHS = 256
BATCH = 128


def collate_cost(k: int) -> float:
    ds = enzymes(seed=0, num_graphs=N_GRAPHS)
    rng = np.random.default_rng(0)
    device = Device()
    with use_device(device):
        hetero = [as_k_type_graph(g.edge_index, g.x, k, rng) for g in ds.graphs]
        device.clock.reset()
        for start in range(0, len(hetero), BATCH):
            batch_hetero(hetero[start : start + BATCH])
        return device.clock.elapsed


def run_ablation():
    return {k: collate_cost(k) for k in TYPE_COUNTS}


def test_ablation_heterograph_types(benchmark, publish):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    base = results[1]
    rows = [
        [str(k), f"{results[k] * 1e3:.1f}", f"{results[k] / base:.2f}x"]
        for k in TYPE_COUNTS
    ]
    publish(
        "ablation_heterograph_types",
        format_table(
            ["edge types", "collate 256 graphs (ms)", "vs 1 type"],
            rows,
            title="Ablation: heterograph batching cost vs type-vocabulary size",
        ),
    )

    # strictly increasing in the number of types
    for a, b in zip(TYPE_COUNTS[:-1], TYPE_COUNTS[1:]):
        assert results[b] > results[a], (a, b)
    # 8 relations cost meaningfully more than 1 (the tax is real)
    assert results[8] > 1.1 * results[1]
