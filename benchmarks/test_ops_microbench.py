"""Operation-level microbenchmarks — the op-by-op magnifying glass.

Times the kernels GNN frameworks are built from (GSpMM, scatter/segment
reduce, dense GEMM, elementwise chains, H2D copies) across the paper's
five dataset shapes plus the R-MAT synthetics, on both framework packs,
eager and compiled, and attributes every cell to its roofline bound:
launch-, bandwidth- or compute-bound on the simulated RTX 2080 Ti.

Writes ``benchmarks/results/ops_microbench.txt`` and the machine-readable
grid ``BENCH_ops.json`` at the repo root (the ops-bench CI gate diffs wall
clock, launch counts and bound classes against the committed copy).
"""

import pathlib

from repro.bench.ops import bound_summary, ops_document, ops_grid, ops_report
from repro.bench.serialize import ops_to_json

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_ops_microbench(benchmark, publish):
    cells = benchmark.pedantic(ops_grid, rounds=1, iterations=1)

    publish("ops_microbench", ops_report(cells))
    (REPO_ROOT / "BENCH_ops.json").write_text(
        ops_to_json(ops_document(cells)) + "\n"
    )

    by_key = {(c["op"], c["pack"], c["mode"], c["shape"]): c for c in cells}

    # Full coverage: every op classified on both packs, no gaps.
    assert len(cells) == 144
    for cell in cells:
        assert cell["bound"] in ("launch", "bandwidth", "compute")

    for shape in ("cora", "pubmed", "enzymes-b128", "mnist-b128", "dd-b128"):
        # Section IV-C: the gather->scatter SpMM lowering pays two
        # launches per propagation where fused GSpMM pays one.
        pyg = by_key[("gspmm", "pygx", "eager", shape)]
        dgl = by_key[("gspmm", "dglx", "eager", shape)]
        assert (pyg["launches"], dgl["launches"]) == (2, 1), shape

        # Fusion collapses the 4-launch elementwise chain to one kernel.
        eager = by_key[("elementwise", "pygx", "eager", shape)]
        fused = by_key[("elementwise", "pygx", "compiled", shape)]
        assert (eager["launches"], fused["launches"]) == (4, 1), shape
        assert fused["wall_time"] < eager["wall_time"], shape

    # Neither lowering dominates — the paper's mixed per-dataset wins.
    # Fused GSpMM wins where launches dominate (small graph batches);
    # the unfused gather/scatter pair, running at higher per-kernel
    # efficiency, wins the feature-heavy bandwidth-bound datasets.
    for shape in ("enzymes-b128", "mnist-b128"):
        pyg = by_key[("gspmm", "pygx", "eager", shape)]
        dgl = by_key[("gspmm", "dglx", "eager", shape)]
        assert dgl["bound"] == "launch" and dgl["wall_time"] < pyg["wall_time"], shape
    for shape in ("cora", "pubmed", "dd-b128"):
        pyg = by_key[("gspmm", "pygx", "eager", shape)]
        dgl = by_key[("gspmm", "dglx", "eager", shape)]
        assert pyg["bound"] == "bandwidth" and pyg["wall_time"] < dgl["wall_time"], shape

    # The paper's small-batch regime: tiny graph batches are launch-bound
    # while the 1433-wide Cora GEMM sits far right of the ridge point.
    assert by_key[("gemm", "pygx", "eager", "enzymes-b128")]["bound"] == "launch"
    assert by_key[("gemm", "pygx", "eager", "cora")]["bound"] == "compute"

    # Sparse propagation never becomes compute-bound at GNN intensities,
    # and copies sit on the PCIe roofline (zero-FLOP by construction).
    for (op, _, _, _), cell in by_key.items():
        if op in ("gspmm", "scatter_reduce"):
            assert cell["bound"] in ("launch", "bandwidth"), cell["shape"]
        if op == "h2d":
            assert cell["flops"] == 0.0

    # Large feature-heavy transfers saturate the link instead of latency.
    assert by_key[("h2d", "pygx", "eager", "cora")]["bound"] == "bandwidth"

    # Every (op, pack) pair lands in at least one bound class somewhere.
    summary = bound_summary(cells)
    for hist in summary.values():
        assert sum(hist.values()) > 0
