"""Operation-level microbenchmarks — the op-by-op magnifying glass.

Times the kernels GNN frameworks are built from (GSpMM, GSDDMM attention
logits, scatter/segment reduce, dense GEMM, elementwise chains, H2D
copies) across the paper's five dataset shapes plus the R-MAT synthetics,
on both framework packs, eager and compiled, in fp32 plus the fp16
roofline mode on the eager cells, and attributes every cell to its
roofline bound: launch-, bandwidth- or compute-bound on the simulated
RTX 2080 Ti.

Writes ``benchmarks/results/ops_microbench.txt`` and the machine-readable
grid ``BENCH_ops.json`` at the repo root (the ops-bench CI gate diffs wall
clock, launch counts and bound classes against the committed copy).
"""

import pathlib

from repro.bench.ops import bound_summary, ops_document, ops_grid, ops_report
from repro.bench.serialize import ops_to_json

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_ops_microbench(benchmark, publish):
    cells = benchmark.pedantic(ops_grid, rounds=1, iterations=1)

    publish("ops_microbench", ops_report(cells))
    (REPO_ROOT / "BENCH_ops.json").write_text(
        ops_to_json(ops_document(cells)) + "\n"
    )

    by_key = {
        (c["op"], c["pack"], c["mode"], c["shape"], c["precision"]): c
        for c in cells
    }

    def cell(op, pack, mode, shape, precision="fp32"):
        return by_key[(op, pack, mode, shape, precision)]

    # Full coverage: every op classified on both packs, no gaps.
    # 8 shapes x (6 ops x 2 packs x 2 modes - 2 h2d-compiled) fp32 cells
    # plus 8 x 6 x 2 fp16 eager cells.
    assert len(cells) == 8 * 22 + 8 * 12
    for c in cells:
        assert c["bound"] in ("launch", "bandwidth", "compute")

    for shape in ("cora", "pubmed", "enzymes-b128", "mnist-b128", "dd-b128"):
        # Section IV-C: the gather->scatter SpMM lowering pays two
        # launches per propagation where fused GSpMM pays one.
        pyg = cell("gspmm", "pygx", "eager", shape)
        dgl = cell("gspmm", "dglx", "eager", shape)
        assert (pyg["launches"], dgl["launches"]) == (2, 1), shape

        # The SDDMM attention logits follow the same dichotomy, wider:
        # DGL's fused GSDDMM pays one launch, PyG's unfused composition
        # pays four (gather, gather, mul, sum).
        pyg = cell("sddmm", "pygx", "eager", shape)
        dgl = cell("sddmm", "dglx", "eager", shape)
        assert (pyg["launches"], dgl["launches"]) == (4, 1), shape

        # Fusion collapses the 4-launch elementwise chain to one kernel.
        eager = cell("elementwise", "pygx", "eager", shape)
        fused = cell("elementwise", "pygx", "compiled", shape)
        assert (eager["launches"], fused["launches"]) == (4, 1), shape
        assert fused["wall_time"] < eager["wall_time"], shape

    # fp16 roofline mode: tensor bytes halve, numerics do not change.
    # Bandwidth-bound cells approach the full 2x; launch-bound cells are
    # pinned to launch overhead and do not move at all.
    for c in cells:
        if c["precision"] != "fp16":
            continue
        f32 = cell(c["op"], c["pack"], c["mode"], c["shape"])
        speedup = f32["wall_time"] / c["wall_time"]
        assert c["launches"] == f32["launches"], c["shape"]
        if f32["bound"] == "bandwidth" and c["bound"] == "bandwidth":
            assert speedup > 1.5, (c["op"], c["pack"], c["shape"], speedup)
        if f32["bound"] == "launch" and c["bound"] == "launch":
            # Overhead-pinned: clearly short of the bandwidth-bound wins.
            assert speedup < 1.5, (c["op"], c["pack"], c["shape"], speedup)
    big_f32 = cell("gspmm", "pygx", "eager", "pubmed")
    big_f16 = cell("gspmm", "pygx", "eager", "pubmed", "fp16")
    assert big_f32["wall_time"] / big_f16["wall_time"] > 1.9
    # A purely launch-bound GEMM does not move at all under fp16.
    tiny = cell("gemm", "pygx", "eager", "enzymes-b128")
    assert tiny["wall_time"] == cell(
        "gemm", "pygx", "eager", "enzymes-b128", "fp16")["wall_time"]

    # Neither lowering dominates — the paper's mixed per-dataset wins.
    # Fused GSpMM wins where launches dominate (small graph batches);
    # the unfused gather/scatter pair, running at higher per-kernel
    # efficiency, wins the feature-heavy bandwidth-bound datasets.
    for shape in ("enzymes-b128", "mnist-b128"):
        pyg = cell("gspmm", "pygx", "eager", shape)
        dgl = cell("gspmm", "dglx", "eager", shape)
        assert dgl["bound"] == "launch" and dgl["wall_time"] < pyg["wall_time"], shape
    for shape in ("cora", "pubmed", "dd-b128"):
        pyg = cell("gspmm", "pygx", "eager", shape)
        dgl = cell("gspmm", "dglx", "eager", shape)
        assert pyg["bound"] == "bandwidth" and pyg["wall_time"] < dgl["wall_time"], shape

    # The paper's small-batch regime: tiny graph batches are launch-bound
    # while the 1433-wide Cora GEMM sits far right of the ridge point.
    assert cell("gemm", "pygx", "eager", "enzymes-b128")["bound"] == "launch"
    assert cell("gemm", "pygx", "eager", "cora")["bound"] == "compute"

    # Sparse propagation never becomes compute-bound at GNN intensities,
    # and copies sit on the PCIe roofline (zero-FLOP by construction).
    for c in cells:
        if c["op"] in ("gspmm", "sddmm", "scatter_reduce"):
            assert c["bound"] in ("launch", "bandwidth"), c["shape"]
        if c["op"] == "h2d":
            assert c["flops"] == 0.0

    # Large feature-heavy transfers saturate the link instead of latency.
    assert cell("h2d", "pygx", "eager", "cora")["bound"] == "bandwidth"

    # Every (op, pack) pair lands in at least one bound class somewhere.
    summary = bound_summary(cells)
    for hist in summary.values():
        assert sum(hist.values()) > 0
